//! Parameterized loop-body kernels.
//!
//! Every parallel loop (and serial section) of the six applications is a
//! [`KernelSpec`]: `loads` strided/irregular loads feeding `chains`
//! independent dependence chains of `depth` ops each, `stores` of the
//! results, induction update and a backward branch. The chain width/depth
//! ratio and the optional loop-carried dependence set the per-thread ILP;
//! the address modes set the memory behaviour; the optional noise branch
//! sets the misprediction rate. Together these four knobs position an
//! application on the paper's Figure 6 chart.
//!
//! A [`KernelInstance`] compiles a spec into a per-iteration instruction
//! template once (so PCs are stable and the branch predictor can learn the
//! static branches), then stamps out iterations, patching addresses and
//! branch outcomes.

use crate::addr::AddrCursor;
use csmt_isa::block::{ChainSpec, OpMix, RegAlloc};
use csmt_isa::{ArchReg, DynInst, OpClass, SplitMix64};

/// Registers reserved for kernel plumbing (outside `RegAlloc`'s temp pools).
const INDUCTION: ArchReg = ArchReg::Int(7);
/// Load destination registers.
const SEEDS: [ArchReg; 4] = [
    ArchReg::Fp(0),
    ArchReg::Fp(1),
    ArchReg::Fp(30),
    ArchReg::Fp(31),
];
/// Loop-carried chain registers — disjoint from load destinations and from
/// `RegAlloc`'s temporary pools, so the recurrence is a true cross-iteration
/// RAW dependence.
const CARRIES: [ArchReg; 4] = [
    ArchReg::Fp(26),
    ArchReg::Fp(27),
    ArchReg::Fp(28),
    ArchReg::Fp(29),
];

/// Static description of one loop body.
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    /// Independent dependence chains per iteration (≈ ILP ceiling).
    pub chains: u8,
    /// Dependent ops per chain (ILP divisor).
    pub depth: u8,
    /// Operation mix of chain links.
    pub mix: OpMix,
    /// Loads per iteration (≤ 4).
    pub loads: u8,
    /// Stores per iteration (≤ 2).
    pub stores: u8,
    /// If true, each chain's seed is the previous iteration's chain tail —
    /// a loop-carried recurrence that serializes iterations (vpenta, ocean's
    /// implicit solvers).
    pub carried: bool,
    /// Probability per iteration of an extra data-dependent branch with a
    /// random outcome (control hazards; fmm's tree-walk tests).
    pub noise_branch: f64,
}

impl KernelSpec {
    /// Instructions emitted per iteration (excluding noise branches and
    /// lock excursions).
    pub fn insts_per_iter(&self) -> u64 {
        let carry_copies = if self.carried { self.chains as u64 } else { 0 };
        self.loads as u64
            + self.chains as u64 * self.depth as u64
            + carry_copies
            + self.stores as u64
            + 2 // induction + backward branch
    }
}

/// Which template slots need per-iteration patching.
#[derive(Debug, Clone)]
struct Patch {
    load_slots: Vec<usize>,
    store_slots: Vec<usize>,
    back_branch: usize,
    noise_branch: Option<usize>,
}

/// A kernel bound to one thread's address cursors, ready to emit.
pub struct KernelInstance {
    template: Vec<DynInst>,
    patch: Patch,
    load_cursors: Vec<AddrCursor>,
    store_cursors: Vec<AddrCursor>,
    iters: u64,
    done: u64,
    rng: SplitMix64,
    noise_branch_p: f64,
    /// Optional critical section: (lock id, probability per iteration,
    /// ops inside the section).
    pub lock: Option<LockUse>,
}

/// Critical-section behaviour for lock-using kernels (fmm).
#[derive(Debug, Clone, Copy)]
pub struct LockUse {
    /// Number of distinct locks; iteration picks one at random.
    pub n_locks: u32,
    /// Probability an iteration enters a critical section.
    pub frac: f64,
    /// Plain ops inside the section.
    pub body_ops: u8,
}

impl KernelInstance {
    /// Compile `spec` at static base PC `base_pc` for `iters` iterations,
    /// with one address cursor per load/store operand.
    pub fn new(
        spec: KernelSpec,
        base_pc: u64,
        iters: u64,
        load_cursors: Vec<AddrCursor>,
        store_cursors: Vec<AddrCursor>,
        seed: u64,
        lock: Option<LockUse>,
    ) -> Self {
        assert!(spec.loads as usize <= SEEDS.len());
        assert!(spec.stores <= 2);
        assert!(spec.chains >= 1 && spec.depth >= 1);
        assert_eq!(load_cursors.len(), spec.loads as usize);
        assert_eq!(store_cursors.len(), spec.stores as usize);

        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc += 4;
            p
        };
        let mut template = Vec::with_capacity(spec.insts_per_iter() as usize + 1);
        let mut load_slots = Vec::new();
        let mut store_slots = Vec::new();

        // Loads into seed registers (addresses patched per iteration).
        for &seed_reg in SEEDS.iter().take(spec.loads as usize) {
            load_slots.push(template.len());
            template.push(DynInst::load(
                next_pc(),
                seed_reg,
                0,
                [Some(INDUCTION), None],
            ));
        }
        // Chains: seeds are the loaded values, or the carry registers for
        // loop-carried recurrences.
        let mut ra = RegAlloc::new();
        let seeds: Vec<ArchReg> = if spec.carried {
            (0..spec.chains as usize)
                .map(|c| CARRIES[c % CARRIES.len()])
                .collect()
        } else if spec.loads > 0 {
            (0..spec.chains as usize)
                .map(|c| SEEDS[c % spec.loads as usize])
                .collect()
        } else {
            (0..spec.chains as usize)
                .map(|c| SEEDS[c % SEEDS.len()])
                .collect()
        };
        let chain_spec = ChainSpec {
            chains: spec.chains,
            depth: spec.depth,
            mix: spec.mix,
        };
        // Inline emit (mirrors BlockBuilder::emit_compute but with our PCs).
        let mut heads = seeds.clone();
        for k in 0..spec.depth {
            for head in heads.iter_mut() {
                let op = chain_spec.mix_op(k);
                let dest = if op.fu_kind() == Some(csmt_isa::FuKind::Fp) {
                    ra.fp()
                } else {
                    ra.int()
                };
                template.push(DynInst::alu(next_pc(), op, Some(dest), [Some(*head), None]));
                *head = dest;
            }
        }
        // Carry copies close the recurrence.
        if spec.carried {
            for (c, &tail) in heads.iter().enumerate() {
                template.push(DynInst::alu(
                    next_pc(),
                    OpClass::FpAdd,
                    Some(CARRIES[c % CARRIES.len()]),
                    [Some(tail), None],
                ));
            }
        }
        // Stores of chain tails.
        for s in 0..spec.stores as usize {
            store_slots.push(template.len());
            let val = heads[s % heads.len()];
            template.push(DynInst::store(next_pc(), 0, [Some(val), Some(INDUCTION)]));
        }
        // Induction update.
        template.push(DynInst::alu(
            next_pc(),
            OpClass::IntAlu,
            Some(INDUCTION),
            [Some(INDUCTION), None],
        ));
        // Optional noise branch (outcome patched; always present in the
        // template when the spec can use it, so PCs stay stable).
        let noise_branch = if spec.noise_branch > 0.0 {
            let slot = template.len();
            template.push(DynInst::branch(
                next_pc(),
                false,
                base_pc,
                [Some(INDUCTION), None],
            ));
            Some(slot)
        } else {
            None
        };
        // Backward loop branch.
        let back_branch = template.len();
        template.push(DynInst::branch(
            next_pc(),
            true,
            base_pc,
            [Some(INDUCTION), None],
        ));

        KernelInstance {
            template,
            patch: Patch {
                load_slots,
                store_slots,
                back_branch,
                noise_branch,
            },
            load_cursors,
            store_cursors,
            iters,
            done: 0,
            rng: SplitMix64::new(seed),
            noise_branch_p: spec.noise_branch,
            lock,
        }
    }

    /// Iterations remaining.
    pub fn remaining(&self) -> u64 {
        self.iters - self.done
    }

    /// Total instructions this instance will emit (without lock excursions).
    pub fn total_insts(&self) -> u64 {
        self.iters * self.template.len() as u64
    }

    /// Emit the next iteration into `out`. Returns `false` when exhausted.
    /// Lock excursions are emitted by the caller (`ProgramStream`) around
    /// the iteration body using [`Self::roll_lock`].
    pub fn emit_iter(&mut self, out: &mut Vec<DynInst>) -> bool {
        if self.done >= self.iters {
            return false;
        }
        let start = out.len();
        out.extend_from_slice(&self.template);
        for (k, &slot) in self.patch.load_slots.iter().enumerate() {
            let a = self.load_cursors[k].next_addr();
            out[start + slot].mem.as_mut().expect("load has mem").addr = a;
        }
        for (k, &slot) in self.patch.store_slots.iter().enumerate() {
            let a = self.store_cursors[k].next_addr();
            out[start + slot].mem.as_mut().expect("store has mem").addr = a;
        }
        if let Some(slot) = self.patch.noise_branch {
            // Taken with probability p: the 2-bit counter settles on
            // not-taken and mispredicts roughly a fraction p of iterations.
            let taken = self.rng.chance(self.noise_branch_p);
            out[start + slot].branch.as_mut().expect("branch").taken = taken;
        }
        self.done += 1;
        let last = self.done >= self.iters;
        out[start + self.patch.back_branch]
            .branch
            .as_mut()
            .expect("branch")
            .taken = !last;
        true
    }

    /// Decide whether this iteration enters a critical section; if so,
    /// return the lock id to use.
    pub fn roll_lock(&mut self) -> Option<u32> {
        let lock = self.lock?;
        if self.rng.chance(lock.frac) {
            Some(self.rng.below(lock.n_locks as u64) as u32)
        } else {
            None
        }
    }
}

/// Helper giving `ChainSpec` the per-level op used by `KernelInstance`
/// (kept in `csmt-isa` notation).
trait MixOp {
    fn mix_op(&self, k: u8) -> OpClass;
}

impl MixOp for ChainSpec {
    fn mix_op(&self, k: u8) -> OpClass {
        match self.mix {
            OpMix::Float => {
                if k % 3 == 2 {
                    OpClass::FpMul
                } else {
                    OpClass::FpAdd
                }
            }
            OpMix::Integer => {
                if k % 4 == 3 {
                    OpClass::IntMul
                } else {
                    OpClass::IntAlu
                }
            }
            OpMix::Mixed => {
                if k.is_multiple_of(2) {
                    OpClass::FpAdd
                } else {
                    OpClass::IntAlu
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AddrCursor, AddrMode, Layout};

    fn spec() -> KernelSpec {
        KernelSpec {
            chains: 2,
            depth: 3,
            mix: OpMix::Float,
            loads: 2,
            stores: 1,
            carried: false,
            noise_branch: 0.0,
        }
    }

    fn cursors(n: usize) -> Vec<AddrCursor> {
        (0..n)
            .map(|k| {
                AddrCursor::new(
                    AddrMode::Stride {
                        layout: Layout::shared((k as u64) << 20),
                        stride: 64,
                        footprint: 1 << 16,
                    },
                    k as u64,
                )
            })
            .collect()
    }

    fn instance(iters: u64) -> KernelInstance {
        KernelInstance::new(spec(), 0x4000, iters, cursors(2), cursors(1), 9, None)
    }

    #[test]
    fn template_length_matches_spec_arithmetic() {
        let k = instance(10);
        assert_eq!(k.template.len() as u64, spec().insts_per_iter());
        assert_eq!(k.total_insts(), 10 * spec().insts_per_iter());
    }

    #[test]
    fn pcs_are_stable_across_iterations() {
        let mut k = instance(3);
        let mut a = Vec::new();
        k.emit_iter(&mut a);
        let mut b = Vec::new();
        k.emit_iter(&mut b);
        let pcs = |v: &[DynInst]| v.iter().map(|i| i.pc).collect::<Vec<_>>();
        assert_eq!(pcs(&a), pcs(&b));
    }

    #[test]
    fn addresses_advance_per_iteration() {
        let mut k = instance(3);
        let mut a = Vec::new();
        k.emit_iter(&mut a);
        let mut b = Vec::new();
        k.emit_iter(&mut b);
        let first_load = |v: &[DynInst]| {
            v.iter()
                .find(|i| i.op == OpClass::Load)
                .unwrap()
                .mem
                .unwrap()
                .addr
        };
        assert_eq!(first_load(&b), first_load(&a) + 64);
    }

    #[test]
    fn last_iteration_falls_through_the_back_branch() {
        let mut k = instance(2);
        let mut v = Vec::new();
        k.emit_iter(&mut v);
        assert!(v.last().unwrap().branch.unwrap().taken);
        v.clear();
        k.emit_iter(&mut v);
        assert!(!v.last().unwrap().branch.unwrap().taken);
        assert!(!k.emit_iter(&mut v));
    }

    #[test]
    fn chains_read_loaded_seeds() {
        let mut k = instance(1);
        let mut v = Vec::new();
        k.emit_iter(&mut v);
        // First chain level: two ops reading SEEDS[0], SEEDS[1].
        let first_level: Vec<_> = v[2..4].iter().map(|i| i.srcs[0].unwrap()).collect();
        assert_eq!(first_level, vec![SEEDS[0], SEEDS[1]]);
    }

    #[test]
    fn carried_kernel_closes_the_recurrence() {
        let mut s = spec();
        s.carried = true;
        let mut k = KernelInstance::new(s, 0, 2, cursors(2), cursors(1), 9, None);
        let mut v = Vec::new();
        k.emit_iter(&mut v);
        // There must be copies back into the carry registers, and the first
        // chain level must read them (not this iteration's loads).
        let copies: Vec<_> = v
            .iter()
            .filter(|i| i.dest == Some(CARRIES[0]) || i.dest == Some(CARRIES[1]))
            .collect();
        assert_eq!(copies.len(), 2);
        let first_level: Vec<_> = v[2..4].iter().map(|i| i.srcs[0].unwrap()).collect();
        assert_eq!(first_level, vec![CARRIES[0], CARRIES[1]]);
    }

    #[test]
    fn noise_branch_present_and_sometimes_taken() {
        let mut s = spec();
        s.noise_branch = 0.8;
        let mut k = KernelInstance::new(s, 0, 200, cursors(2), cursors(1), 9, None);
        let mut taken = 0;
        for _ in 0..200 {
            let mut v = Vec::new();
            k.emit_iter(&mut v);
            // Noise branch is the second-to-last instruction.
            if v[v.len() - 2].branch.unwrap().taken {
                taken += 1;
            }
        }
        // Taken with probability 0.8 per iteration.
        assert!(taken > 120 && taken < 195, "taken={taken}");
    }

    #[test]
    fn lock_roll_respects_frequency() {
        let mut s = spec();
        s.noise_branch = 0.0;
        let lock = LockUse {
            n_locks: 4,
            frac: 0.25,
            body_ops: 3,
        };
        let mut k = KernelInstance::new(s, 0, 1, cursors(2), cursors(1), 9, Some(lock));
        let mut hits = 0;
        for _ in 0..1000 {
            if let Some(id) = k.roll_lock() {
                assert!(id < 4);
                hits += 1;
            }
        }
        assert!((150..400).contains(&hits), "hits={hits}");
    }

    #[test]
    fn deterministic_emission() {
        let run = || {
            let mut k = instance(50);
            let mut v = Vec::new();
            while k.emit_iter(&mut v) {}
            v
        };
        assert_eq!(run(), run());
    }
}
