//! # csmt-workloads — the paper's six applications, synthesized
//!
//! The paper drives its simulator with MIPS2 binaries of swim, tomcatv,
//! mgrid (SPEC95), vpenta (NASA7), and fmm, ocean (SPLASH-2) through the
//! MINT execution-driven front-end. Running those binaries is not possible
//! here, so this crate builds the closest synthetic equivalent (see
//! DESIGN.md §2): deterministic generators that reproduce each
//! application's *architecturally relevant* signature — thread parallelism,
//! per-thread ILP, memory behaviour, synchronization pattern — which is
//! precisely what the paper's architectural comparison consumes.
//!
//! * [`addr`] — NUMA-aware data placement and address patterns;
//! * [`kernel`] — parameterized loop bodies with stable PCs;
//! * [`program`] — per-thread phase interpreters ([`program::ProgramStream`]);
//! * [`apps`] — the six application specs and [`apps::build_streams`];
//! * [`runner`] — one-call simulation of (application × architecture ×
//!   machine), the entry point used by examples and the bench harness;
//! * [`multiprogram`] — multiprogrammed mixes of independent sequential
//!   jobs (the evaluation mode of the SMT papers the paper builds on);
//! * [`tls`] — a first-order thread-level-speculation mode (the authors'
//!   companion work [7]): sequential loops run speculatively with
//!   violation replay and ordered commit.

//! ```
//! use csmt_core::ArchKind;
//! use csmt_workloads::{by_name, simulate};
//!
//! let app = by_name("mgrid").expect("one of the paper's six");
//! let r = simulate(&app, ArchKind::Smt2, 1, 0.02, 42);
//! assert!(r.cycles > 0 && r.ipc() > 0.0);
//! ```

pub mod addr;
pub mod apps;
pub mod kernel;
pub mod multiprogram;
pub mod program;
pub mod runner;
pub mod tls;

pub use apps::{all_apps, build_streams, by_name, AppParams, AppSpec};
pub use multiprogram::{
    multiprogram_streams, simulate_job_batches, simulate_multiprogram,
    simulate_multiprogram_with_sched, BatchResult,
};
pub use runner::{
    simulate, simulate_probed, simulate_with_chip, simulate_with_mem, simulate_with_sched,
    simulate_with_sched_name,
};
pub use tls::{simulate_tls, tls_streams, TlsLoop, TlsResult};
