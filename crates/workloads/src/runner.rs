//! One-call simulation of (application × architecture × machine size).
//!
//! This is the function every figure reduces to: build the machine, create
//! "as many threads as are required by the processor" (§4), run to
//! completion, return the statistics.

use crate::apps::{build_streams, AppParams, AppSpec};
use csmt_core::{ArchKind, Machine, RunResult, ThreadScheduler};
use csmt_mem::MemConfig;

/// Ceiling on simulated cycles; hitting it means a deadlock (a bug).
const MAX_CYCLES: u64 = 2_000_000_000;

/// Simulate `app` on `arch` with `n_chips` chips at work scale `scale`.
///
/// Thread count = the machine's hardware contexts (Table 2 × chips), e.g.
/// SMT2 × 4 chips = 32 threads, FA1 × 4 chips = 4 threads.
pub fn simulate(app: &AppSpec, arch: ArchKind, n_chips: usize, scale: f64, seed: u64) -> RunResult {
    simulate_with_mem(app, arch, n_chips, scale, seed, MemConfig::table3())
}

/// [`simulate`] with a custom memory configuration (ablation benches).
pub fn simulate_with_mem(
    app: &AppSpec,
    arch: ArchKind,
    n_chips: usize,
    scale: f64,
    seed: u64,
    mem: MemConfig,
) -> RunResult {
    simulate_with_chip(app, arch.chip(), n_chips, scale, seed, mem)
}

/// Fully custom simulation: any chip configuration (e.g. a non-Table-2
/// shape or a different fetch policy) on any machine size.
pub fn simulate_with_chip(
    app: &AppSpec,
    chip: csmt_core::ChipConfig,
    n_chips: usize,
    scale: f64,
    seed: u64,
    mem: MemConfig,
) -> RunResult {
    simulate_probed(
        app,
        chip,
        n_chips,
        scale,
        seed,
        mem,
        &mut csmt_trace::NullProbe,
    )
}

/// [`simulate`] with an explicit thread-to-cluster scheduling policy
/// (overriding the `CSMT_SCHED` environment default). Panics if the policy
/// is invalid for the architecture — dynamic policies on fixed-assignment
/// chips, zero rebalance quantum — callers wanting a soft failure should
/// pre-validate with [`Machine::set_scheduler`] themselves.
pub fn simulate_with_sched(
    app: &AppSpec,
    arch: ArchKind,
    n_chips: usize,
    scale: f64,
    seed: u64,
    sched: Box<dyn ThreadScheduler + Send>,
) -> RunResult {
    let mut machine = Machine::new(arch.chip(), n_chips, MemConfig::table3(), seed);
    machine
        .set_scheduler(sched)
        .unwrap_or_else(|e| panic!("invalid scheduler for {}: {e}", arch.name()));
    let n_threads = machine.hw_thread_capacity();
    let params = AppParams::new(n_threads, n_chips, scale, seed);
    machine.attach_threads(build_streams(app, &params));
    machine.run(MAX_CYCLES)
}

/// [`simulate_with_sched`] by policy *name*, degrading exactly like the
/// `CSMT_SCHED` environment path instead of panicking: a dynamic policy
/// requested on a fixed-assignment architecture falls back to static
/// (FA machines pin thread assignment by construction), and an unknown
/// name keeps the machine's environment-selected default. This is the
/// cell-execution function of the sweep engine, where one policy name is
/// applied across a whole (arch × app) grid.
pub fn simulate_with_sched_name(
    app: &AppSpec,
    arch: ArchKind,
    n_chips: usize,
    scale: f64,
    seed: u64,
    sched: &str,
) -> RunResult {
    let mut machine = Machine::new(arch.chip(), n_chips, MemConfig::table3(), seed);
    if let Some(policy) = csmt_core::sched::by_name(sched) {
        // Err == dynamic-on-FA: keep the static default, like the env path.
        let _ = machine.set_scheduler(policy);
    }
    let n_threads = machine.hw_thread_capacity();
    let params = AppParams::new(n_threads, n_chips, scale, seed);
    machine.attach_threads(build_streams(app, &params));
    machine.run(MAX_CYCLES)
}

/// [`simulate_with_chip`] with an observability probe attached to every
/// cycle (heartbeat samplers, pipeline trace writers — see `csmt-trace`).
/// With [`csmt_trace::NullProbe`] this is exactly `simulate_with_chip`.
/// Probes with buffered output should have their `finish()` called after
/// this returns.
pub fn simulate_probed<P: csmt_trace::Probe>(
    app: &AppSpec,
    chip: csmt_core::ChipConfig,
    n_chips: usize,
    scale: f64,
    seed: u64,
    mem: MemConfig,
    probe: &mut P,
) -> RunResult {
    let mut machine = Machine::new(chip, n_chips, mem, seed);
    let n_threads = machine.hw_thread_capacity();
    let params = AppParams::new(n_threads, n_chips, scale, seed);
    machine.attach_threads(build_streams(app, &params));
    machine.run_probed(MAX_CYCLES, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    const SCALE: f64 = 0.03;

    #[test]
    fn every_app_completes_on_every_arch_low_end() {
        for app in apps::all_apps() {
            for arch in ArchKind::ALL {
                let r = simulate(&app, arch, 1, SCALE, 42);
                assert!(r.cycles > 0, "{} on {}", app.name, arch.name());
                assert!(r.slots.committed > 0);
            }
        }
    }

    #[test]
    fn high_end_runs_with_four_chips() {
        let app = apps::ocean();
        let r = simulate(&app, ArchKind::Smt2, 4, SCALE, 42);
        assert_eq!(r.chips, 4);
        assert_eq!(r.threads, 32);
        assert!(
            r.mem.remote_mem + r.mem.remote_l2 > 0,
            "NUMA traffic expected"
        );
    }

    #[test]
    fn thread_counts_match_table2_times_chips() {
        let app = apps::swim();
        for (arch, chips, expect) in [
            (ArchKind::Fa8, 1, 8),
            (ArchKind::Fa1, 1, 1),
            (ArchKind::Smt2, 1, 8),
            (ArchKind::Fa8, 4, 32),
            (ArchKind::Fa4, 4, 16),
            (ArchKind::Fa2, 4, 8),
            (ArchKind::Fa1, 4, 4),
            (ArchKind::Smt2, 4, 32),
        ] {
            let r = simulate(&app, arch, chips, 0.01, 1);
            assert_eq!(r.threads, expect, "{} × {chips}", arch.name());
        }
    }

    #[test]
    fn fa1_commits_all_the_work_single_threaded() {
        let app = apps::vpenta();
        let r1 = simulate(&app, ArchKind::Fa1, 1, SCALE, 42);
        let r8 = simulate(&app, ArchKind::Fa8, 1, SCALE, 42);
        // Same total work modulo per-thread iteration truncation (each of
        // the 8 threads loses up to one iteration per loop — visible at the
        // tiny test scale, ~1% at figure scale).
        let ratio = r1.slots.committed as f64 / r8.slots.committed as f64;
        assert!((0.85..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_end_to_end() {
        let app = apps::fmm();
        let a = simulate(&app, ArchKind::Smt4, 1, SCALE, 9);
        let b = simulate(&app, ArchKind::Smt4, 1, SCALE, 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn dynamic_policy_conserves_committed_work() {
        use csmt_core::{BarrierRebalance, StaticRoundRobin};
        let app = apps::mgrid();
        let stat = simulate_with_sched(
            &app,
            ArchKind::Smt2,
            1,
            SCALE,
            42,
            Box::new(StaticRoundRobin),
        );
        let dynamic = simulate_with_sched(
            &app,
            ArchKind::Smt2,
            1,
            SCALE,
            42,
            Box::new(BarrierRebalance::default()),
        );
        assert_eq!(stat.slots.committed, dynamic.slots.committed);
        assert_eq!(stat.migrations, 0);
    }

    #[test]
    fn locks_are_exercised_by_fmm() {
        let r = simulate(&apps::fmm(), ArchKind::Smt2, 1, SCALE, 42);
        assert!(r.lock_acquisitions > 0);
    }

    #[test]
    fn barriers_are_exercised_by_every_app() {
        for app in apps::all_apps() {
            let r = simulate(&app, ArchKind::Fa4, 1, SCALE, 42);
            assert!(r.barrier_episodes > 0, "{}", app.name);
        }
    }
}
