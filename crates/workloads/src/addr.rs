//! Address-stream generation for the synthetic applications.
//!
//! Two concerns live here:
//!
//! * **NUMA layout** — on the high-end machine, memory pages interleave
//!   round-robin across nodes (`csmt-mem::Directory::home_of`). Real DASH
//!   codes place a thread's private arrays on its own node (first-touch);
//!   [`Layout`] reproduces that by mapping a thread's *logical* slice offset
//!   onto physical pages congruent to its node, so private data is local
//!   and only genuinely shared data travels.
//! * **Access patterns** — dense strided sweeps (the Fortran stencils),
//!   irregular pointer-chasing (fmm's tree walks), and neighbor-slice
//!   exchange (ocean's boundary rows), via [`AddrCursor`].

use csmt_isa::SplitMix64;

/// Base of the shared global region (pages interleave across nodes).
pub const SHARED_BASE: u64 = 0x1_0000_0000;
/// Base of the per-thread slice region.
pub const SLICE_BASE: u64 = 0x2_0000_0000;
/// Logical bytes reserved per thread slice.
pub const SLICE_SPAN: u64 = 1 << 26;

/// Maps logical offsets of one thread's slice to physical addresses that
/// stay on its node's pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Physical base of the region.
    pub base: u64,
    /// Owning node.
    pub node: u64,
    /// Total nodes in the machine.
    pub n_nodes: u64,
    /// Page size (must match `MemConfig::page_size`).
    pub page: u64,
}

impl Layout {
    /// Layout for `thread`'s private slice on a machine of `n_nodes` nodes
    /// with `threads_per_node` software threads per node.
    pub fn private_slice(
        thread: usize,
        n_nodes: usize,
        threads_per_node: usize,
        page: u64,
    ) -> Self {
        let node = thread
            .checked_div(threads_per_node)
            .unwrap_or(0)
            .min(n_nodes - 1);
        Layout {
            // Spreading a slice across its node's pages dilates logical
            // offsets by n_nodes; space the bases accordingly so slices
            // never collide physically.
            base: SLICE_BASE + thread as u64 * SLICE_SPAN * n_nodes as u64,
            node: node as u64,
            n_nodes: n_nodes as u64,
            page,
        }
    }

    /// Identity layout into the shared region (no node pinning: pages
    /// interleave, as genuinely shared data does).
    pub fn shared(offset: u64) -> Self {
        Layout {
            base: SHARED_BASE + offset,
            node: 0,
            n_nodes: 1,
            page: 4096,
        }
    }

    /// Physical address of logical offset `logical`.
    #[inline]
    pub fn addr(&self, logical: u64) -> u64 {
        if self.n_nodes <= 1 {
            return self.base + logical;
        }
        let page_idx = logical / self.page;
        let within = logical % self.page;
        self.base + page_idx * (self.page * self.n_nodes) + self.node * self.page + within
    }
}

/// How one memory operand of a kernel walks memory.
#[derive(Debug, Clone)]
pub enum AddrMode {
    /// Dense strided sweep over a layout, wrapping at `footprint`.
    Stride {
        /// The region walked.
        layout: Layout,
        /// Bytes between consecutive iterations' accesses.
        stride: u64,
        /// Logical bytes before wrapping.
        footprint: u64,
    },
    /// Uniformly random 8-byte-aligned accesses within `footprint`.
    Irregular {
        /// The region accessed.
        layout: Layout,
        /// Logical bytes addressable.
        footprint: u64,
    },
    /// Strided over own slice, but a fraction of accesses go to the
    /// neighbor's slice instead (boundary exchange).
    NeighborMix {
        /// Own slice.
        own: Layout,
        /// Neighbor thread's slice.
        neighbor: Layout,
        /// Stride in bytes.
        stride: u64,
        /// Logical bytes before wrapping.
        footprint: u64,
        /// Probability an access hits the neighbor slice.
        neighbor_frac: f64,
    },
}

/// A stateful generator of one operand's address per kernel iteration.
#[derive(Debug, Clone)]
pub struct AddrCursor {
    mode: AddrMode,
    offset: u64,
    rng: SplitMix64,
}

impl AddrCursor {
    /// New cursor with its own deterministic random stream.
    pub fn new(mode: AddrMode, seed: u64) -> Self {
        Self::resumed(mode, seed, 0)
    }

    /// Cursor resuming as if `iters_before` iterations had already been
    /// emitted — lets a kernel re-instantiated each timestep continue its
    /// sweep instead of re-touching the same few lines (real array sweeps
    /// stream; they only wrap at the array boundary).
    pub fn resumed(mode: AddrMode, seed: u64, iters_before: u64) -> Self {
        let offset = match &mode {
            AddrMode::Stride {
                stride, footprint, ..
            }
            | AddrMode::NeighborMix {
                stride, footprint, ..
            } => (iters_before * stride) % (*footprint).max(*stride),
            AddrMode::Irregular { .. } => 0,
        };
        AddrCursor {
            mode,
            offset,
            rng: SplitMix64::new(seed.wrapping_add(iters_before)),
        }
    }

    /// Address for the next iteration.
    pub fn next_addr(&mut self) -> u64 {
        match &self.mode {
            AddrMode::Stride {
                layout,
                stride,
                footprint,
            } => {
                let a = layout.addr(self.offset);
                self.offset = (self.offset + stride) % (*footprint).max(*stride);
                a
            }
            AddrMode::Irregular { layout, footprint } => {
                let slots = (footprint / 8).max(1);
                layout.addr(self.rng.below(slots) * 8)
            }
            AddrMode::NeighborMix {
                own,
                neighbor,
                stride,
                footprint,
                neighbor_frac,
            } => {
                let use_neighbor = self.rng.chance(*neighbor_frac);
                let l = if use_neighbor { neighbor } else { own };
                let a = l.addr(self.offset);
                self.offset = (self.offset + stride) % (*footprint).max(*stride);
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_layout_is_identity_plus_base() {
        let l = Layout {
            base: 0x1000,
            node: 0,
            n_nodes: 1,
            page: 4096,
        };
        assert_eq!(l.addr(0), 0x1000);
        assert_eq!(l.addr(12345), 0x1000 + 12345);
    }

    #[test]
    fn node_local_layout_keeps_pages_on_one_node() {
        // 4 nodes: home(page) = page % 4 under the directory's round-robin.
        let page = 4096u64;
        for node in 0..4u64 {
            let l = Layout {
                base: 0,
                node,
                n_nodes: 4,
                page,
            };
            for logical in [0u64, 8, 4095, 4096, 8192, 100_000] {
                let phys = l.addr(logical);
                assert_eq!((phys / page) % 4, node, "logical {logical} node {node}");
            }
        }
    }

    #[test]
    fn node_local_layout_is_injective_within_slice() {
        let l = Layout {
            base: 0,
            node: 2,
            n_nodes: 4,
            page: 4096,
        };
        let a = l.addr(4000);
        let b = l.addr(4100); // next logical page
        assert_ne!(a, b);
        assert!(b > a, "monotone across pages");
    }

    #[test]
    fn private_slices_do_not_overlap() {
        let page = 4096;
        let l0 = Layout::private_slice(0, 4, 2, page);
        let l1 = Layout::private_slice(1, 4, 2, page);
        // Node spreading dilates a slice to SLICE_SPAN × n_nodes physical
        // bytes; bases are spaced by exactly that.
        assert!(l0.addr(SLICE_SPAN - 1) < l1.addr(0));
    }

    #[test]
    fn private_slice_assigns_threads_to_nodes_in_blocks() {
        let l = |t| Layout::private_slice(t, 4, 8, 4096).node;
        assert_eq!(l(0), 0);
        assert_eq!(l(7), 0);
        assert_eq!(l(8), 1);
        assert_eq!(l(31), 3);
    }

    #[test]
    fn stride_cursor_wraps_at_footprint() {
        let layout = Layout::shared(0);
        let mut c = AddrCursor::new(
            AddrMode::Stride {
                layout,
                stride: 64,
                footprint: 256,
            },
            1,
        );
        let addrs: Vec<u64> = (0..6).map(|_| c.next_addr() - SHARED_BASE).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn irregular_cursor_stays_in_footprint_and_is_aligned() {
        let layout = Layout::shared(0);
        let mut c = AddrCursor::new(
            AddrMode::Irregular {
                layout,
                footprint: 4096,
            },
            3,
        );
        for _ in 0..500 {
            let a = c.next_addr() - SHARED_BASE;
            assert!(a < 4096);
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn neighbor_mix_touches_both_slices() {
        let own = Layout::private_slice(0, 1, 8, 4096);
        let neighbor = Layout::private_slice(1, 1, 8, 4096);
        let mut c = AddrCursor::new(
            AddrMode::NeighborMix {
                own,
                neighbor,
                stride: 8,
                footprint: 1 << 16,
                neighbor_frac: 0.3,
            },
            5,
        );
        let mut own_n = 0;
        let mut nb_n = 0;
        for _ in 0..1000 {
            let a = c.next_addr();
            if a >= neighbor.base {
                nb_n += 1;
            } else {
                own_n += 1;
            }
        }
        assert!(own_n > 500 && nb_n > 150, "own={own_n} nb={nb_n}");
    }

    #[test]
    fn cursors_are_deterministic() {
        let mk = || {
            AddrCursor::new(
                AddrMode::Irregular {
                    layout: Layout::shared(64),
                    footprint: 65536,
                },
                9,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..200 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }
}
