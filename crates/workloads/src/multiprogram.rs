//! Multiprogrammed workloads.
//!
//! The SMT papers the paper builds on (Tullsen et al. [16], Lo et al. [9])
//! evaluate *multiprogrammed* mixes — several independent programs sharing
//! the chip — alongside parallel ones. This module provides that mode as an
//! extension: each application of a mix runs **sequentially** (its
//! single-thread version, exactly what FA1 executes in Figure 4) in its own
//! runtime group, so programs never synchronize with each other.
//!
//! This is the workload class where SMT shines brightest: with no barriers
//! coupling the contexts, any spare issue slot of one program is
//! immediately usable by another — while an FA chip strands the slots of
//! whichever narrow cluster its program happens to stall on.

use crate::apps::{build_streams, AppParams, AppSpec};
use csmt_core::{ArchKind, ChipConfig, Machine, RunResult, ThreadScheduler};
use csmt_isa::InstStream;
use csmt_mem::MemConfig;

/// Ceiling on simulated cycles; hitting it means a deadlock (a bug).
const MAX_CYCLES: u64 = 2_000_000_000;

/// Build the grouped streams of a multiprogrammed mix: program `k` of
/// `apps` becomes one sequential thread in group `k`. Programs are cloned
/// round-robin until `n_contexts` hardware contexts are filled (the usual
/// "one job per context" loading of the SMT literature).
pub fn multiprogram_streams(
    apps: &[AppSpec],
    n_contexts: usize,
    scale: f64,
    seed: u64,
) -> Vec<(Box<dyn InstStream + Send>, usize)> {
    assert!(!apps.is_empty());
    assert!(n_contexts >= 1);
    (0..n_contexts)
        .map(|k| {
            let app = &apps[k % apps.len()];
            // Each job is the app's sequential version with its own seed so
            // two copies of the same program are not in lockstep.
            let params = AppParams::new(1, 1, scale, seed ^ ((k as u64) << 24));
            let mut streams = build_streams(app, &params);
            debug_assert_eq!(streams.len(), 1);
            (streams.pop().expect("one sequential stream"), k)
        })
        .collect()
}

/// Simulate a multiprogrammed mix of `apps` on `arch`: every hardware
/// context runs one sequential job (mixes shorter than the context count
/// are repeated round-robin).
pub fn simulate_multiprogram(
    apps: &[AppSpec],
    arch: ArchKind,
    n_chips: usize,
    scale: f64,
    seed: u64,
) -> RunResult {
    simulate_multiprogram_with_chip(apps, arch.chip(), n_chips, scale, seed)
}

/// [`simulate_multiprogram`] with a custom chip configuration.
pub fn simulate_multiprogram_with_chip(
    apps: &[AppSpec],
    chip: ChipConfig,
    n_chips: usize,
    scale: f64,
    seed: u64,
) -> RunResult {
    let mut machine = Machine::new(chip, n_chips, MemConfig::table3(), seed);
    let n = machine.hw_thread_capacity();
    machine.attach_threads_grouped(multiprogram_streams(apps, n, scale, seed));
    machine.run(MAX_CYCLES)
}

/// [`simulate_multiprogram`] with an explicit thread-to-cluster scheduling
/// policy. Multiprogrammed mixes never hit a barrier, so quantum-driven
/// policies (hazard pairing) are the interesting ones here. Panics on an
/// invalid policy × architecture combination.
pub fn simulate_multiprogram_with_sched(
    apps: &[AppSpec],
    arch: ArchKind,
    n_chips: usize,
    scale: f64,
    seed: u64,
    sched: Box<dyn ThreadScheduler + Send>,
) -> RunResult {
    let mut machine = Machine::new(arch.chip(), n_chips, MemConfig::table3(), seed);
    machine
        .set_scheduler(sched)
        .unwrap_or_else(|e| panic!("invalid scheduler for {}: {e}", arch.name()));
    let n = machine.hw_thread_capacity();
    machine.attach_threads_grouped(multiprogram_streams(apps, n, scale, seed));
    machine.run(MAX_CYCLES)
}

/// Outcome of running a fixed job set through capacity-sized batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchResult {
    /// Total cycles summed over the sequential batches.
    pub total_cycles: u64,
    /// Useful instructions committed across all batches.
    pub committed: u64,
    /// Jobs executed.
    pub jobs: usize,
    /// Batches needed (= ceil(jobs / contexts)).
    pub batches: usize,
}

impl BatchResult {
    /// Throughput in committed instructions per cycle over the whole job set.
    pub fn throughput(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.total_cycles as f64
        }
    }
}

/// Run exactly `n_jobs` sequential jobs (apps cycled round-robin) on the
/// chip, batching when the job count exceeds the hardware contexts — the
/// fair fixed-work comparison across architectures with different context
/// counts (an FA2 chip runs 8 jobs as 4 batches of 2).
pub fn simulate_job_batches(
    apps: &[AppSpec],
    n_jobs: usize,
    chip: ChipConfig,
    n_chips: usize,
    scale: f64,
    seed: u64,
) -> BatchResult {
    assert!(n_jobs >= 1);
    let mut total_cycles = 0u64;
    let mut committed = 0u64;
    let mut batches = 0usize;
    let mut job = 0usize;
    while job < n_jobs {
        let mut machine = Machine::new(chip, n_chips, MemConfig::table3(), seed ^ (batches as u64));
        let cap = machine.hw_thread_capacity();
        let batch_jobs = cap.min(n_jobs - job);
        let streams: Vec<(Box<dyn InstStream + Send>, usize)> = (0..batch_jobs)
            .map(|k| {
                let idx = job + k;
                let app = &apps[idx % apps.len()];
                let params = AppParams::new(1, 1, scale, seed ^ ((idx as u64) << 24));
                let mut s = build_streams(app, &params);
                (s.pop().expect("one stream"), k)
            })
            .collect();
        machine.attach_threads_grouped(streams);
        let r = machine.run(MAX_CYCLES);
        total_cycles += r.cycles;
        committed += r.slots.committed;
        batches += 1;
        job += batch_jobs;
    }
    BatchResult {
        total_cycles,
        committed,
        jobs: n_jobs,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn streams_fill_all_contexts_round_robin() {
        let mix = [apps::swim(), apps::vpenta()];
        let streams = multiprogram_streams(&mix, 8, 0.02, 7);
        assert_eq!(streams.len(), 8);
        let groups: Vec<usize> = streams.iter().map(|(_, g)| *g).collect();
        assert_eq!(groups, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn mix_completes_on_smt_and_fa() {
        let mix = [apps::swim(), apps::vpenta(), apps::mgrid(), apps::ocean()];
        for arch in [ArchKind::Smt2, ArchKind::Fa8, ArchKind::Fa2] {
            let r = simulate_multiprogram(&mix, arch, 1, 0.02, 7);
            assert!(r.cycles > 0, "{}", arch.name());
            assert!(r.slots.committed > 0);
        }
    }

    #[test]
    fn copies_of_the_same_program_are_not_in_lockstep() {
        // Two copies of swim must have different dynamic behaviour (seeds
        // differ), otherwise they would thrash the same cache sets in sync.
        let streams = multiprogram_streams(&[apps::fmm()], 2, 0.02, 7);
        let drain = |mut s: Box<dyn InstStream + Send>| {
            let mut v = Vec::new();
            while let Some(i) = s.next_inst() {
                v.push(i.mem.map(|m| m.addr));
            }
            v
        };
        let mut it = streams.into_iter();
        let a = drain(it.next().unwrap().0);
        let b = drain(it.next().unwrap().0);
        assert_ne!(a, b, "irregular accesses must differ across copies");
    }

    #[test]
    fn batching_runs_every_job_exactly_once() {
        let mix = [apps::vpenta(), apps::tomcatv()];
        // FA2 has 2 contexts: 8 jobs → 4 batches.
        let r = simulate_job_batches(&mix, 8, ArchKind::Fa2.chip(), 1, 0.02, 7);
        assert_eq!(r.batches, 4);
        assert_eq!(r.jobs, 8);
        // SMT2 has 8 contexts: one batch, same committed work (same seeds).
        let r2 = simulate_job_batches(&mix, 8, ArchKind::Smt2.chip(), 1, 0.02, 7);
        assert_eq!(r2.batches, 1);
        let ratio = r.committed as f64 / r2.committed as f64;
        assert!(
            (0.99..1.01).contains(&ratio),
            "same work: {} vs {}",
            r.committed,
            r2.committed
        );
    }

    #[test]
    fn hazard_pairing_mix_conserves_committed_work() {
        use csmt_core::{HazardPairing, StaticRoundRobin};
        let mix = [apps::swim(), apps::ocean()];
        let stat = simulate_multiprogram_with_sched(
            &mix,
            ArchKind::Smt2,
            1,
            0.02,
            7,
            Box::new(StaticRoundRobin),
        );
        let paired = simulate_multiprogram_with_sched(
            &mix,
            ArchKind::Smt2,
            1,
            0.02,
            7,
            Box::new(HazardPairing::default()),
        );
        assert_eq!(stat.slots.committed, paired.slots.committed);
    }

    #[test]
    fn smt_beats_fa_on_multiprogrammed_mixes() {
        // The classic SMT result: on a mix of independent sequential jobs,
        // the SMT chips outperform the same-width FA chips because idle
        // slots flow between programs.
        let mix = [apps::swim(), apps::vpenta(), apps::tomcatv(), apps::ocean()];
        let smt2 = simulate_multiprogram(&mix, ArchKind::Smt2, 1, 0.05, 7);
        let fa8 = simulate_multiprogram(&mix, ArchKind::Fa8, 1, 0.05, 7);
        assert!(
            smt2.cycles < fa8.cycles,
            "SMT2 {} vs FA8 {}",
            smt2.cycles,
            fa8.cycles
        );
    }
}
