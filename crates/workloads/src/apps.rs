//! The six applications of the paper's evaluation (§4).
//!
//! Three SPEC95 Fortran codes (swim, tomcatv, mgrid) and the NASA7 vpenta
//! kernel, parallelized in the paper by Polaris; two SPLASH-2 C codes (fmm,
//! ocean) using ANL macros. We model each as an [`AppSpec`] — a fork-join
//! phase structure plus kernel parameters — calibrated so that, measured on
//! our simulator exactly as the paper measures (average runnable threads on
//! FA8, average ILP on FA1), each application lands in its Figure 6
//! neighbourhood:
//!
//! | app     | character                                            | Fig 6 (low-end) |
//! |---------|------------------------------------------------------|-----------------|
//! | swim    | shallow-water stencil; parallel, mid ILP             | ~(4, 4)         |
//! | tomcatv | mesh generator; heavy serial sections, decent ILP    | ~(2, 4)         |
//! | mgrid   | multigrid; parallelism shrinks at coarse levels      | ~(4, 3)         |
//! | vpenta  | pentadiagonal solver; very parallel, recurrences     | ~(6, 2)         |
//! | fmm     | N-body; irregular, locks, imbalance, high ILP        | ~(4, 5)         |
//! | ocean   | regular grids + boundary exchange; very parallel     | ~(7, 1.5)       |

use crate::addr::{AddrCursor, AddrMode, Layout};
use crate::kernel::{KernelInstance, KernelSpec, LockUse};
use crate::program::{Phase, ProgramStream};
use csmt_isa::block::OpMix;
use csmt_isa::{InstStream, SplitMix64};

/// Machine-facing parameters of one run.
#[derive(Debug, Clone, Copy)]
pub struct AppParams {
    /// Software threads to create (the machine's hardware context count).
    pub n_threads: usize,
    /// Chips in the machine (for NUMA-aware data placement).
    pub n_chips: usize,
    /// Work scaling: 1.0 = full figure-sized run, smaller for tests.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl AppParams {
    /// Convenience constructor.
    pub fn new(n_threads: usize, n_chips: usize, scale: f64, seed: u64) -> Self {
        assert!(n_threads >= 1 && n_chips >= 1 && scale > 0.0);
        AppParams {
            n_threads,
            n_chips,
            scale,
            seed,
        }
    }
}

/// How a loop's memory operands walk memory.
///
/// Footprints are the *whole application's* array sizes; each thread works
/// a `footprint / n_threads` slice (domain decomposition — the dataset does
/// not grow with the thread count).
#[derive(Debug, Clone, Copy)]
pub enum MemStyle {
    /// Dense stride over the thread's private slice.
    PrivateStride {
        /// Bytes between accesses.
        stride: u64,
        /// Whole-array bytes (divided among threads).
        footprint: u64,
    },
    /// Random accesses into the shared region (pages interleave nodes).
    SharedIrregular {
        /// Shared bytes addressable.
        footprint: u64,
    },
    /// Stride over own slice with a fraction going to the ring neighbor's
    /// slice (boundary exchange).
    NeighborStride {
        /// Bytes between accesses.
        stride: u64,
        /// Slice bytes before wrapping.
        footprint: u64,
        /// Fraction of accesses touching the neighbor.
        neighbor_frac: f64,
    },
}

/// One parallel loop (executed each timestep, split across threads).
#[derive(Debug, Clone)]
pub struct LoopDef {
    /// Total iterations across all threads.
    pub total_iters: u64,
    /// The loop body.
    pub kernel: KernelSpec,
    /// Load address behaviour, one entry per load operand (cycled if
    /// shorter than `kernel.loads`).
    pub load_styles: Vec<MemStyle>,
    /// Store address behaviour.
    pub store_style: MemStyle,
    /// Load imbalance: thread weights are `1 + imbalance·u(t)` with
    /// `u(t) ∈ [0,1)` a per-thread hash. 0 = perfectly balanced.
    pub imbalance: f64,
    /// Whether iterations may enter lock-protected critical sections.
    pub use_locks: bool,
}

/// A whole application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Outer timesteps.
    pub steps: u64,
    /// Serial-section iterations per timestep (thread 0 only; the
    /// convergence checks / reductions Polaris could not parallelize).
    pub serial_iters: u64,
    /// Serial-section kernel (typically high-ILP).
    pub serial_kernel: KernelSpec,
    /// Parallel loops per timestep.
    pub loops: Vec<LoopDef>,
    /// Lock behaviour for loops with `use_locks`.
    pub lock: Option<LockUse>,
}

impl AppSpec {
    /// Approximate total dynamic instructions at `scale` (for sizing runs).
    pub fn approx_insts(&self, scale: f64) -> u64 {
        let serial = self.serial_iters as f64 * self.serial_kernel.insts_per_iter() as f64;
        let par: f64 = self
            .loops
            .iter()
            .map(|l| l.total_iters as f64 * l.kernel.insts_per_iter() as f64)
            .sum();
        (self.steps as f64 * (serial + par) * scale) as u64
    }
}

/// Page size assumed by data placement (must equal `MemConfig::page_size`).
const PAGE: u64 = 4096;

fn scaled(iters: u64, scale: f64) -> u64 {
    ((iters as f64 * scale) as u64).max(1)
}

/// Per-thread iteration share with imbalance.
///
/// Largest-remainder allocation: the shares sum to exactly `total`, so the
/// application's work is invariant in the thread count (flooring would
/// silently shrink the work for high thread counts).
fn share(total: u64, t: usize, n: usize, imbalance: f64, seed: u64) -> u64 {
    if n == 1 {
        return total;
    }
    let u = |k: usize| SplitMix64::new(seed ^ (k as u64 * 0x9E37)).next_f64();
    let w: Vec<f64> = (0..n).map(|k| 1.0 + imbalance * u(k)).collect();
    let sum: f64 = w.iter().sum();
    let exact: Vec<f64> = w.iter().map(|wk| total as f64 * wk / sum).collect();
    let mut shares: Vec<u64> = exact.iter().map(|&e| e as u64).collect();
    let mut left = total.saturating_sub(shares.iter().sum::<u64>());
    // Hand the leftover iterations to the largest fractional parts.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - shares[a] as f64;
        let fb = exact[b] - shares[b] as f64;
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &k in order.iter().cycle().take(n * 2) {
        if left == 0 {
            break;
        }
        shares[k] += 1;
        left -= 1;
    }
    shares[t]
}

fn cursors_for(
    styles: &[MemStyle],
    count: usize,
    t: usize,
    p: &AppParams,
    iters_before: u64,
    seed: u64,
) -> Vec<AddrCursor> {
    let threads_per_node = p.n_threads.div_ceil(p.n_chips);
    let own = Layout::private_slice(t, p.n_chips, threads_per_node, PAGE);
    let neighbor = Layout::private_slice((t + 1) % p.n_threads, p.n_chips, threads_per_node, PAGE);
    // Domain decomposition: each thread sweeps its share of the arrays.
    let slice = |footprint: u64| (footprint / p.n_threads as u64).max(4096);
    (0..count)
        .map(|k| {
            let style = styles[k % styles.len()];
            // Distinct arrays per operand. The offset staggers page, cache
            // set and bank (a pure power-of-two spacing would alias every
            // operand stream into the same L1/L2 set).
            let array_off = k as u64 * ((1 << 22) + (1 << 12) + 3 * 64);
            let mode = match style {
                MemStyle::PrivateStride { stride, footprint } => AddrMode::Stride {
                    layout: Layout {
                        base: own.base + array_off,
                        ..own
                    },
                    stride,
                    footprint: slice(footprint),
                },
                MemStyle::SharedIrregular { footprint } => AddrMode::Irregular {
                    layout: Layout::shared(array_off),
                    footprint,
                },
                MemStyle::NeighborStride {
                    stride,
                    footprint,
                    neighbor_frac,
                } => AddrMode::NeighborMix {
                    own: Layout {
                        base: own.base + array_off,
                        ..own
                    },
                    neighbor: Layout {
                        base: neighbor.base + array_off,
                        ..neighbor
                    },
                    stride,
                    footprint: slice(footprint),
                    neighbor_frac,
                },
            };
            AddrCursor::resumed(mode, seed ^ (k as u64) << 32, iters_before)
        })
        .collect()
}

/// Build the per-thread instruction streams for `app` under `params`.
///
/// Thread 0 carries the serial sections; every live thread participates in
/// every barrier; total parallel work is invariant in the thread count
/// (so FA1's single thread executes the whole application serially, as the
/// paper specifies).
pub fn build_streams(app: &AppSpec, params: &AppParams) -> Vec<Box<dyn InstStream + Send>> {
    let n = params.n_threads;
    let mut out: Vec<Box<dyn InstStream + Send>> = Vec::with_capacity(n);
    for t in 0..n {
        let mut phases = Vec::new();
        let mut barrier_id = 0u32;
        for step in 0..app.steps {
            let seed_base = params.seed ^ (step << 40);
            if app.serial_iters > 0 {
                if t == 0 {
                    let iters = scaled(app.serial_iters, params.scale);
                    let serial_style = [MemStyle::PrivateStride {
                        stride: 8,
                        footprint: 1 << 19,
                    }];
                    let loads = cursors_for(
                        &serial_style,
                        app.serial_kernel.loads as usize,
                        0,
                        params,
                        step * iters,
                        seed_base ^ 0x5E41A,
                    );
                    let stores = cursors_for(
                        &serial_style,
                        app.serial_kernel.stores as usize,
                        0,
                        params,
                        step * iters,
                        seed_base ^ 0x5E41B,
                    );
                    phases.push(Phase::Kernel(KernelInstance::new(
                        app.serial_kernel,
                        0x1_0000,
                        iters,
                        loads,
                        stores,
                        seed_base ^ 0x5E41C,
                        None,
                    )));
                }
                phases.push(Phase::Sync(csmt_isa::SyncOp::Barrier(barrier_id)));
                barrier_id += 1;
            }
            for (li, l) in app.loops.iter().enumerate() {
                let total = scaled(l.total_iters, params.scale);
                let iters = share(total, t, n, l.imbalance, params.seed ^ (li as u64) << 16);
                if iters > 0 {
                    let base_pc = 0x2_0000 + li as u64 * 0x1000;
                    let loads = cursors_for(
                        &l.load_styles,
                        l.kernel.loads as usize,
                        t,
                        params,
                        step * iters,
                        seed_base ^ ((li as u64) << 8) ^ (t as u64),
                    );
                    let stores = cursors_for(
                        std::slice::from_ref(&l.store_style),
                        l.kernel.stores as usize,
                        t,
                        params,
                        step * iters,
                        seed_base ^ ((li as u64) << 8) ^ (t as u64) ^ 0xDEAD,
                    );
                    let lock = if l.use_locks { app.lock } else { None };
                    phases.push(Phase::Kernel(KernelInstance::new(
                        l.kernel,
                        base_pc,
                        iters,
                        loads,
                        stores,
                        seed_base ^ ((li as u64) << 24) ^ ((t as u64) << 4),
                        lock,
                    )));
                }
                phases.push(Phase::Sync(csmt_isa::SyncOp::Barrier(barrier_id)));
                barrier_id += 1;
            }
        }
        out.push(Box::new(ProgramStream::new(phases)));
    }
    out
}

// ---------------------------------------------------------------------
// The six applications.
// ---------------------------------------------------------------------

/// swim — SPEC95 shallow-water model. Wide parallel stencil loops over
/// large arrays with moderate ILP, a modest serial section per timestep.
pub fn swim() -> AppSpec {
    let stencil = KernelSpec {
        chains: 4,
        depth: 3,
        mix: OpMix::Float,
        loads: 3,
        stores: 1,
        carried: false,
        // Boundary tests inside the sweeps: occasional data-dependent
        // branches that real codes have and perfect loop prediction hides.
        noise_branch: 0.05,
    };
    let dense = MemStyle::PrivateStride {
        stride: 8,
        footprint: 1 << 21,
    };
    AppSpec {
        name: "swim",
        steps: 5,
        serial_iters: 250,
        serial_kernel: KernelSpec {
            chains: 1,
            depth: 8,
            mix: OpMix::Float,
            loads: 2,
            stores: 1,
            carried: true,
            noise_branch: 0.02,
        },
        loops: vec![
            LoopDef {
                total_iters: 1200,
                kernel: stencil,
                load_styles: vec![
                    dense,
                    MemStyle::PrivateStride {
                        stride: 16,
                        footprint: 1 << 21,
                    },
                ],
                store_style: dense,
                imbalance: 0.45,
                use_locks: false,
            },
            LoopDef {
                total_iters: 1200,
                kernel: stencil,
                load_styles: vec![dense],
                store_style: dense,
                imbalance: 0.0,
                use_locks: false,
            },
        ],
        lock: None,
    }
}

/// tomcatv — SPEC95 mesh generator. The least parallel application: long
/// serial solver sections dominate; the parallel loops have good ILP.
pub fn tomcatv() -> AppSpec {
    let body = KernelSpec {
        chains: 2,
        depth: 4,
        mix: OpMix::Float,
        loads: 2,
        stores: 1,
        carried: true,
        noise_branch: 0.04,
    };
    let dense = MemStyle::PrivateStride {
        stride: 8,
        footprint: 1 << 20,
    };
    AppSpec {
        name: "tomcatv",
        steps: 5,
        serial_iters: 520,
        serial_kernel: KernelSpec {
            chains: 1,
            depth: 8,
            mix: OpMix::Float,
            loads: 2,
            stores: 1,
            carried: true,
            noise_branch: 0.02,
        },
        loops: vec![LoopDef {
            total_iters: 1300,
            kernel: body,
            load_styles: vec![dense],
            store_style: dense,
            // The mesh solver's triangular loops leave threads unevenly
            // loaded, which (with the serial sections) holds tomcatv's
            // thread parallelism near 2.
            imbalance: 1.4,
            use_locks: false,
        }],
        lock: None,
    }
}

/// mgrid — SPEC95 multigrid solver. Alternating fine (parallel) and coarse
/// (short, barrier-heavy) grid sweeps; the inter-level smoother recurrences
/// hold per-thread ILP at about 3.
pub fn mgrid() -> AppSpec {
    let relax = KernelSpec {
        chains: 2,
        depth: 4,
        mix: OpMix::Float,
        loads: 3,
        stores: 1,
        carried: true,
        noise_branch: 0.04,
    };
    let coarse = KernelSpec { depth: 3, ..relax };
    let dense = MemStyle::PrivateStride {
        stride: 8,
        footprint: 1 << 21,
    };
    AppSpec {
        name: "mgrid",
        steps: 4,
        serial_iters: 180,
        serial_kernel: KernelSpec {
            chains: 1,
            depth: 8,
            mix: OpMix::Float,
            loads: 2,
            stores: 1,
            carried: true,
            noise_branch: 0.02,
        },
        loops: vec![
            LoopDef {
                total_iters: 1100,
                kernel: relax,
                load_styles: vec![dense],
                store_style: dense,
                imbalance: 0.0,
                use_locks: false,
            },
            LoopDef {
                total_iters: 300,
                kernel: coarse,
                load_styles: vec![MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 19,
                }],
                store_style: MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 19,
                },
                imbalance: 0.0,
                use_locks: false,
            },
            LoopDef {
                total_iters: 120,
                kernel: coarse,
                load_styles: vec![MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 17,
                }],
                store_style: MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 17,
                },
                imbalance: 0.0,
                use_locks: false,
            },
        ],
        lock: None,
    }
}

/// vpenta — NASA7 pentadiagonal inversion. Almost embarrassingly parallel
/// (tiny serial sections) but recurrence-bound: a single deep loop-carried
/// chain pins the per-thread ILP near 2.
pub fn vpenta() -> AppSpec {
    let recur = KernelSpec {
        chains: 1,
        depth: 6,
        mix: OpMix::Float,
        loads: 3,
        stores: 2,
        carried: true,
        noise_branch: 0.02,
    };
    let dense = MemStyle::PrivateStride {
        stride: 8,
        footprint: 1 << 21,
    };
    AppSpec {
        name: "vpenta",
        steps: 4,
        serial_iters: 60,
        serial_kernel: KernelSpec {
            chains: 1,
            depth: 8,
            mix: OpMix::Float,
            loads: 2,
            stores: 1,
            carried: true,
            noise_branch: 0.02,
        },
        loops: vec![
            LoopDef {
                total_iters: 1500,
                kernel: recur,
                load_styles: vec![dense],
                store_style: dense,
                imbalance: 0.0,
                use_locks: false,
            },
            LoopDef {
                total_iters: 1500,
                kernel: recur,
                load_styles: vec![dense],
                store_style: dense,
                imbalance: 0.0,
                use_locks: false,
            },
        ],
        lock: None,
    }
}

/// fmm — SPLASH-2 fast multipole N-body. Irregular tree accesses, lock-
/// protected cell updates, load imbalance across threads, high-ILP force
/// kernels with data-dependent branches.
pub fn fmm() -> AppSpec {
    let force = KernelSpec {
        chains: 5,
        depth: 2,
        mix: OpMix::Mixed,
        loads: 2,
        stores: 1,
        carried: false,
        noise_branch: 0.05,
    };
    AppSpec {
        name: "fmm",
        steps: 4,
        serial_iters: 260,
        serial_kernel: KernelSpec {
            chains: 1,
            depth: 8,
            mix: OpMix::Mixed,
            loads: 2,
            stores: 1,
            carried: true,
            noise_branch: 0.03,
        },
        loops: vec![
            LoopDef {
                total_iters: 900,
                kernel: force,
                load_styles: vec![
                    MemStyle::SharedIrregular { footprint: 1 << 15 },
                    MemStyle::PrivateStride {
                        stride: 8,
                        footprint: 1 << 19,
                    },
                ],
                store_style: MemStyle::PrivateStride {
                    stride: 16,
                    footprint: 1 << 19,
                },
                imbalance: 0.5,
                use_locks: true,
            },
            LoopDef {
                total_iters: 500,
                kernel: KernelSpec {
                    chains: 4,
                    noise_branch: 0.04,
                    ..force
                },
                load_styles: vec![MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 20,
                }],
                store_style: MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 20,
                },
                imbalance: 0.4,
                use_locks: false,
            },
        ],
        lock: Some(LockUse {
            n_locks: 16,
            frac: 0.04,
            body_ops: 4,
        }),
    }
}

/// ocean — SPLASH-2 ocean-current simulation. Very parallel grid sweeps
/// with boundary exchange between neighbor threads and recurrence-bound
/// red-black relaxation: many threads, low per-thread ILP.
pub fn ocean() -> AppSpec {
    let relax = KernelSpec {
        chains: 1,
        depth: 6,
        mix: OpMix::Float,
        loads: 3,
        stores: 1,
        carried: true,
        noise_branch: 0.03,
    };
    AppSpec {
        name: "ocean",
        steps: 5,
        serial_iters: 80,
        serial_kernel: KernelSpec {
            chains: 1,
            depth: 8,
            mix: OpMix::Float,
            loads: 2,
            stores: 1,
            carried: true,
            noise_branch: 0.02,
        },
        loops: vec![
            LoopDef {
                total_iters: 1400,
                kernel: relax,
                load_styles: vec![
                    MemStyle::NeighborStride {
                        stride: 8,
                        footprint: 1 << 21,
                        neighbor_frac: 0.10,
                    },
                    MemStyle::PrivateStride {
                        stride: 8,
                        footprint: 1 << 21,
                    },
                    MemStyle::PrivateStride {
                        stride: 16,
                        footprint: 1 << 21,
                    },
                ],
                store_style: MemStyle::PrivateStride {
                    stride: 8,
                    footprint: 1 << 21,
                },
                imbalance: 0.0,
                use_locks: false,
            },
            LoopDef {
                total_iters: 1100,
                kernel: relax,
                load_styles: vec![
                    MemStyle::NeighborStride {
                        stride: 8,
                        footprint: 1 << 20,
                        neighbor_frac: 0.08,
                    },
                    MemStyle::PrivateStride {
                        stride: 8,
                        footprint: 1 << 20,
                    },
                ],
                store_style: MemStyle::NeighborStride {
                    stride: 8,
                    footprint: 1 << 20,
                    neighbor_frac: 0.05,
                },
                imbalance: 0.0,
                use_locks: false,
            },
        ],
        lock: None,
    }
}

/// All six applications in the paper's figure order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![swim(), tomcatv(), mgrid(), vpenta(), fmm(), ocean()]
}

/// Look an application up by name.
pub fn by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_papers_six_apps() {
        let names: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec!["swim", "tomcatv", "mgrid", "vpenta", "fmm", "ocean"]
        );
        assert!(by_name("ocean").is_some());
        assert!(by_name("gcc").is_none());
    }

    #[test]
    fn total_parallel_work_is_thread_count_invariant() {
        for app in all_apps() {
            for l in 0..app.loops.len() {
                let total = scaled(app.loops[l].total_iters, 1.0);
                for n in [1usize, 2, 4, 8, 16, 32] {
                    let sum: u64 = (0..n)
                        .map(|t| share(total, t, n, app.loops[l].imbalance, 1))
                        .sum();
                    // Integer truncation loses at most n iterations.
                    assert!(
                        sum <= total && sum + n as u64 >= total,
                        "{} loop {l}: {sum} vs {total} at n={n}",
                        app.name
                    );
                }
            }
        }
    }

    #[test]
    fn imbalance_spreads_work_unevenly() {
        let even: Vec<u64> = (0..8).map(|t| share(800, t, 8, 0.0, 1)).collect();
        let uneven: Vec<u64> = (0..8).map(|t| share(800, t, 8, 0.8, 1)).collect();
        assert!(even.iter().all(|&x| x == even[0]));
        assert!(uneven.iter().any(|&x| x != uneven[0]));
    }

    #[test]
    fn streams_build_for_every_app_and_thread_count() {
        let p1 = AppParams::new(1, 1, 0.02, 7);
        let p8 = AppParams::new(8, 1, 0.02, 7);
        let p32 = AppParams::new(32, 4, 0.02, 7);
        for app in all_apps() {
            for p in [&p1, &p8, &p32] {
                let streams = build_streams(&app, p);
                assert_eq!(streams.len(), p.n_threads, "{}", app.name);
            }
        }
    }

    #[test]
    fn single_thread_stream_contains_all_the_work() {
        // FA1 runs the program sequentially: one stream with all iterations.
        let app = swim();
        let p = AppParams::new(1, 1, 0.05, 7);
        let streams = build_streams(&app, &p);
        let hint = streams[0].len_hint().expect("hint");
        let approx = app.approx_insts(0.05);
        let ratio = hint as f64 / approx as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "hint {hint} vs approx {approx}"
        );
    }

    #[test]
    fn all_threads_emit_identical_barrier_sequences() {
        let app = mgrid();
        let p = AppParams::new(4, 1, 0.02, 7);
        let mut streams = build_streams(&app, &p);
        let barrier_seq = |s: &mut Box<dyn InstStream + Send>| {
            let mut ids = Vec::new();
            while let Some(i) = s.next_inst() {
                if let Some(csmt_isa::SyncOp::Barrier(id)) = i.sync {
                    ids.push(id);
                }
            }
            ids
        };
        let first = barrier_seq(&mut streams[0]);
        assert!(!first.is_empty());
        for s in streams.iter_mut().skip(1) {
            assert_eq!(barrier_seq(s), first);
        }
    }

    #[test]
    fn scale_shrinks_work_proportionally() {
        let app = ocean();
        let big = app.approx_insts(1.0);
        let small = app.approx_insts(0.1);
        let ratio = big as f64 / small as f64;
        assert!((8.0..12.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn apps_are_figure_sized() {
        // Keep full-scale runs in the low hundreds of thousands of
        // instructions so a whole figure sweeps in seconds.
        for app in all_apps() {
            let insts = app.approx_insts(1.0);
            assert!(
                (50_000..2_000_000).contains(&insts),
                "{}: {insts}",
                app.name
            );
        }
    }
}
