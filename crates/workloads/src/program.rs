//! Thread programs: phases of kernel loops and synchronization.
//!
//! A [`ProgramStream`] lazily interprets a list of [`Phase`]s as the
//! thread's dynamic instruction stream — the shape Polaris gives a
//! parallelized Fortran application (fork-join loops separated by barriers,
//! with the serial sections on thread 0) and the ANL macros give the
//! SPLASH-2 codes (plus lock-protected critical sections).

use crate::kernel::KernelInstance;
use csmt_isa::{ArchReg, DynInst, InstStream, OpClass, SyncOp};

/// One phase of a thread's program.
pub enum Phase {
    /// Run a kernel to completion.
    Kernel(KernelInstance),
    /// A synchronization operation.
    Sync(SyncOp),
}

/// PC region used for lock-excursion instructions.
const LOCK_BODY_PC: u64 = 0xF000;

/// Lazily generated instruction stream for one software thread.
pub struct ProgramStream {
    phases: Vec<Phase>,
    idx: usize,
    buf: Vec<DynInst>,
    pos: usize,
    len_hint: u64,
}

impl ProgramStream {
    /// Wrap a phase list.
    pub fn new(phases: Vec<Phase>) -> Self {
        let len_hint = phases
            .iter()
            .map(|p| match p {
                Phase::Kernel(k) => k.total_insts(),
                Phase::Sync(_) => 1,
            })
            .sum();
        ProgramStream {
            phases,
            idx: 0,
            buf: Vec::with_capacity(64),
            pos: 0,
            len_hint,
        }
    }
}

impl InstStream for ProgramStream {
    fn next_inst(&mut self) -> Option<DynInst> {
        loop {
            if self.pos < self.buf.len() {
                let i = self.buf[self.pos];
                self.pos += 1;
                return Some(i);
            }
            self.buf.clear();
            self.pos = 0;
            match self.phases.get_mut(self.idx) {
                None => return None,
                Some(Phase::Sync(op)) => {
                    let op = *op;
                    self.idx += 1;
                    return Some(DynInst::sync(0xE000 + self.idx as u64 * 4, op));
                }
                Some(Phase::Kernel(k)) => {
                    // Optional critical section around this iteration (fmm).
                    if let Some(lock_id) = k.roll_lock() {
                        let body = k.lock.expect("roll_lock implies lock").body_ops;
                        self.buf
                            .push(DynInst::sync(LOCK_BODY_PC, SyncOp::LockAcquire(lock_id)));
                        for b in 0..body {
                            self.buf.push(DynInst::alu(
                                LOCK_BODY_PC + 4 + b as u64 * 4,
                                OpClass::IntAlu,
                                Some(ArchReg::Int(6)),
                                [Some(ArchReg::Int(6)), None],
                            ));
                        }
                        self.buf.push(DynInst::sync(
                            LOCK_BODY_PC + 4 + body as u64 * 4,
                            SyncOp::LockRelease(lock_id),
                        ));
                    }
                    if !k.emit_iter(&mut self.buf) {
                        self.buf.clear();
                        self.idx += 1;
                    }
                }
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len_hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AddrCursor, AddrMode, Layout};
    use crate::kernel::{KernelSpec, LockUse};
    use csmt_isa::block::OpMix;

    fn kernel(iters: u64, lock: Option<LockUse>) -> KernelInstance {
        let spec = KernelSpec {
            chains: 2,
            depth: 2,
            mix: OpMix::Float,
            loads: 1,
            stores: 0,
            carried: false,
            noise_branch: 0.0,
        };
        let cursors = vec![AddrCursor::new(
            AddrMode::Stride {
                layout: Layout::shared(0),
                stride: 8,
                footprint: 4096,
            },
            1,
        )];
        KernelInstance::new(spec, 0x100, iters, cursors, vec![], 5, lock)
    }

    #[test]
    fn stream_yields_kernel_then_sync_then_ends() {
        let phases = vec![
            Phase::Kernel(kernel(3, None)),
            Phase::Sync(SyncOp::Barrier(0)),
        ];
        let mut s = ProgramStream::new(phases);
        let mut insts = Vec::new();
        while let Some(i) = s.next_inst() {
            insts.push(i);
        }
        // 3 iterations × 7 insts + 1 sync.
        assert_eq!(insts.len(), 3 * 7 + 1);
        assert_eq!(insts.last().unwrap().sync, Some(SyncOp::Barrier(0)));
        assert!(s.next_inst().is_none());
    }

    #[test]
    fn len_hint_counts_kernels_and_syncs() {
        let phases = vec![
            Phase::Kernel(kernel(5, None)),
            Phase::Sync(SyncOp::Barrier(0)),
            Phase::Sync(SyncOp::Exit),
        ];
        let s = ProgramStream::new(phases);
        assert_eq!(s.len_hint(), Some(5 * 7 + 2));
    }

    #[test]
    fn lock_excursions_wrap_iterations_in_acquire_release_pairs() {
        let lock = LockUse {
            n_locks: 2,
            frac: 1.0,
            body_ops: 2,
        };
        let mut s = ProgramStream::new(vec![Phase::Kernel(kernel(4, Some(lock)))]);
        let mut acquires = 0;
        let mut releases = 0;
        let mut depth = 0i32;
        while let Some(i) = s.next_inst() {
            match i.sync {
                Some(SyncOp::LockAcquire(_)) => {
                    acquires += 1;
                    depth += 1;
                    assert_eq!(depth, 1, "no nesting");
                }
                Some(SyncOp::LockRelease(_)) => {
                    releases += 1;
                    depth -= 1;
                    assert_eq!(depth, 0);
                }
                _ => {}
            }
        }
        assert_eq!(acquires, 4);
        assert_eq!(releases, 4);
    }

    #[test]
    fn empty_program_ends_immediately() {
        let mut s = ProgramStream::new(vec![]);
        assert!(s.next_inst().is_none());
    }
}
