//! Top-down cycle accounting: a stall-attribution tree over the §4.1
//! issue-slot statistics.
//!
//! The paper's Figures 4–8 print one stacked bar per (app × arch) cell:
//! the fraction of issue slots that were useful, plus seven flat hazard
//! classes. This module arranges those same numbers as a two-level
//! hierarchy in the style of Intel's top-down methodology, so a reader
//! can answer "what kind of bound is this run" before drilling into the
//! individual hazards:
//!
//! ```text
//! total slots
//! ├── useful
//! └── stalled
//!     ├── frontend_bound      = fetch + control
//!     │   ├── fetch_starved     (empty in-flight FIFO, no redirect)
//!     │   └── bad_speculation   (redirect bubbles + wrong-path work)
//!     ├── backend_bound       = memory + data + structural
//!     │   ├── memory_bound      (operands waiting on in-flight loads)
//!     │   ├── data_dependence   (register deps on non-load producers)
//!     │   └── issue_retire_bound(ready-but-unissued: FU/issue bandwidth,
//!     │                          or a window full of done work: retire)
//!     ├── sync_bound          = sync  (parked at barriers/locks or done)
//!     └── rename_squash       = other (rename-register stalls + squashes)
//! ```
//!
//! Every leaf is an *exact copy* of one hazard accumulator — no slot is
//! re-attributed — so the tree reconciles bit-for-bit with the run's
//! `SlotStats` (`tests/metrics_reconcile.rs` enforces this for every
//! Table 2 architecture).

use serde::Value;

/// Indices into the hazard array, mirroring `csmt_cpu::Hazard::index()`
/// (pinned to [`csmt_trace::HAZARD_LABELS`] by a cross-crate test).
mod hz {
    pub const OTHER: usize = 0;
    pub const STRUCTURAL: usize = 1;
    pub const MEMORY: usize = 2;
    pub const DATA: usize = 3;
    pub const CONTROL: usize = 4;
    pub const SYNC: usize = 5;
    pub const FETCH: usize = 6;
}

/// One node of the attribution tree: a label, a slot count, and children
/// whose `slots` sum exactly to this node's (for interior nodes).
#[derive(Debug, Clone)]
pub struct AttributionNode {
    /// Snake-case node name (stable: keys report tables and JSON).
    pub name: &'static str,
    /// Issue slots attributed to this node.
    pub slots: f64,
    /// Sub-attributions; empty for leaves.
    pub children: Vec<AttributionNode>,
}

impl AttributionNode {
    fn leaf(name: &'static str, slots: f64) -> Self {
        AttributionNode {
            name,
            slots,
            children: Vec::new(),
        }
    }

    fn interior(name: &'static str, children: Vec<AttributionNode>) -> Self {
        let slots = children.iter().map(|c| c.slots).sum();
        AttributionNode {
            name,
            slots,
            children,
        }
    }
}

/// The full top-down tree for one run, plus the totals it must reconcile
/// against.
#[derive(Debug, Clone)]
pub struct AttributionTree {
    /// Root node (`total`), whose direct children are `useful` and
    /// `stalled`.
    pub root: AttributionNode,
    /// Total issue slots offered (`issue_width × cycles` over clusters).
    pub total_slots: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
}

impl AttributionTree {
    /// Build the tree from the run's slot accounting: `useful` slots, the
    /// seven hazard accumulators in [`csmt_trace::HAZARD_LABELS`] order,
    /// and the totals. This is exactly the data carried by the final
    /// `CycleStats` snapshot or a `RunResult`'s `SlotStats`.
    pub fn from_slots(
        useful: f64,
        wasted: &[f64; 7],
        total_slots: u64,
        cycles: u64,
        committed: u64,
    ) -> Self {
        let frontend = AttributionNode::interior(
            "frontend_bound",
            vec![
                AttributionNode::leaf("fetch_starved", wasted[hz::FETCH]),
                AttributionNode::leaf("bad_speculation", wasted[hz::CONTROL]),
            ],
        );
        let backend = AttributionNode::interior(
            "backend_bound",
            vec![
                AttributionNode::leaf("memory_bound", wasted[hz::MEMORY]),
                AttributionNode::leaf("data_dependence", wasted[hz::DATA]),
                AttributionNode::leaf("issue_retire_bound", wasted[hz::STRUCTURAL]),
            ],
        );
        let stalled = AttributionNode::interior(
            "stalled",
            vec![
                frontend,
                backend,
                AttributionNode::leaf("sync_bound", wasted[hz::SYNC]),
                AttributionNode::leaf("rename_squash", wasted[hz::OTHER]),
            ],
        );
        let root = AttributionNode::interior(
            "total",
            vec![AttributionNode::leaf("useful", useful), stalled],
        );
        AttributionTree {
            root,
            total_slots,
            cycles,
            committed,
        }
    }

    /// Sum of all leaf slots (== `useful + Σ wasted`; conservation makes
    /// this equal `total_slots` up to float rounding).
    pub fn leaf_total(&self) -> f64 {
        fn walk(n: &AttributionNode) -> f64 {
            if n.children.is_empty() {
                n.slots
            } else {
                n.children.iter().map(walk).sum()
            }
        }
        walk(&self.root)
    }

    /// The named node, searched depth-first.
    pub fn node(&self, name: &str) -> Option<&AttributionNode> {
        fn find<'a>(n: &'a AttributionNode, name: &str) -> Option<&'a AttributionNode> {
            if n.name == name {
                return Some(n);
            }
            n.children.iter().find_map(|c| find(c, name))
        }
        find(&self.root, name)
    }

    /// Render as an indented text tree with slot counts and percentages
    /// of total, e.g. for `csmt-report`.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let total = self.total_slots as f64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "top-down slot accounting ({} slots over {} cycles, {} committed, ipc {:.2}):",
            self.total_slots,
            self.cycles,
            self.committed,
            if self.cycles == 0 {
                0.0
            } else {
                self.committed as f64 / self.cycles as f64
            }
        );
        fn walk(n: &AttributionNode, depth: usize, total: f64, out: &mut String) {
            use std::fmt::Write as _;
            let pct = if total > 0.0 {
                100.0 * n.slots / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:indent$}{:<20} {:>12.1}  {:>5.1}%",
                "",
                n.name,
                n.slots,
                pct,
                indent = depth * 2
            );
            for c in &n.children {
                walk(c, depth + 1, total, out);
            }
        }
        walk(&self.root, 0, total, &mut out);
        out
    }

    /// The tree as JSON: nested `{name, slots, pct, children}` objects.
    pub fn to_value(&self) -> Value {
        fn node_value(n: &AttributionNode, total: f64) -> Value {
            let mut fields = vec![
                ("name".into(), Value::Str(n.name.to_string())),
                ("slots".into(), Value::F64(n.slots)),
                (
                    "pct".into(),
                    Value::F64(if total > 0.0 {
                        100.0 * n.slots / total
                    } else {
                        0.0
                    }),
                ),
            ];
            if !n.children.is_empty() {
                fields.push((
                    "children".into(),
                    Value::Array(n.children.iter().map(|c| node_value(c, total)).collect()),
                ));
            }
            Value::Object(fields)
        }
        Value::Object(vec![
            ("total_slots".into(), Value::U64(self.total_slots)),
            ("cycles".into(), Value::U64(self.cycles)),
            ("committed".into(), Value::U64(self.committed)),
            (
                "tree".into(),
                node_value(&self.root, self.total_slots as f64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributionTree {
        // useful 40, other 1, structural 2, memory 20, data 10,
        // control 3, sync 16, fetch 8  → total 100.
        AttributionTree::from_slots(40.0, &[1.0, 2.0, 20.0, 10.0, 3.0, 16.0, 8.0], 100, 25, 50)
    }

    #[test]
    fn interior_nodes_sum_their_children_exactly() {
        let t = sample();
        assert_eq!(t.node("frontend_bound").unwrap().slots, 8.0 + 3.0);
        assert_eq!(t.node("backend_bound").unwrap().slots, 20.0 + 10.0 + 2.0);
        assert_eq!(t.node("stalled").unwrap().slots, 60.0);
        assert_eq!(t.root.slots, 100.0);
    }

    #[test]
    fn every_hazard_class_appears_exactly_once_as_a_leaf() {
        let t = sample();
        assert_eq!(t.node("memory_bound").unwrap().slots, 20.0);
        assert_eq!(t.node("data_dependence").unwrap().slots, 10.0);
        assert_eq!(t.node("issue_retire_bound").unwrap().slots, 2.0);
        assert_eq!(t.node("fetch_starved").unwrap().slots, 8.0);
        assert_eq!(t.node("bad_speculation").unwrap().slots, 3.0);
        assert_eq!(t.node("sync_bound").unwrap().slots, 16.0);
        assert_eq!(t.node("rename_squash").unwrap().slots, 1.0);
        assert_eq!(t.leaf_total(), 100.0);
    }

    #[test]
    fn text_render_mentions_every_node_with_percentages() {
        let t = sample();
        let text = t.render_text();
        for name in [
            "total",
            "useful",
            "stalled",
            "frontend_bound",
            "memory_bound",
            "sync_bound",
            "rename_squash",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("40.0%"), "useful pct missing:\n{text}");
        assert!(text.contains("ipc 2.00"), "ipc missing:\n{text}");
    }

    #[test]
    fn json_tree_nests_and_keeps_totals() {
        let t = sample();
        let v = t.to_value();
        assert_eq!(v.get("total_slots").and_then(Value::as_u64), Some(100));
        let tree = v.get("tree").unwrap();
        assert_eq!(tree.get("name").and_then(Value::as_str), Some("total"));
        let children = tree.get("children").and_then(Value::as_array).unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(
            children[0].get("name").and_then(Value::as_str),
            Some("useful")
        );
        assert_eq!(children[0].get("pct").and_then(Value::as_f64), Some(40.0));
    }

    #[test]
    fn zero_slot_run_renders_without_dividing_by_zero() {
        let t = AttributionTree::from_slots(0.0, &[0.0; 7], 0, 0, 0);
        assert_eq!(t.leaf_total(), 0.0);
        let text = t.render_text();
        assert!(text.contains("0.0%"));
        assert!(t.to_value().get("tree").is_some());
    }
}
