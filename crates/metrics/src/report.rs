//! [`MetricsReport`]: the finished artifact a [`MetricsProbe`] run
//! produces — attribution tree, histograms, timelines, and the Perfetto
//! trace — with text and JSON renderers.
//!
//! [`MetricsProbe`]: crate::MetricsProbe

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use serde::Value;

use crate::hist::LogHistogram;
use crate::perfetto::PerfettoTrace;
use crate::topdown::AttributionTree;

/// Everything [`MetricsProbe::finish`](crate::MetricsProbe::finish)
/// distills from one run. Per-thread keys are `(cluster, hw context)`
/// pairs, sorted; per-cluster vectors are indexed by machine-global
/// cluster id.
#[derive(Debug)]
pub struct MetricsReport {
    /// Top-down stall-attribution tree over the final slot accounting.
    pub topdown: AttributionTree,
    /// Fetch→commit lifetime of committed instructions, per cluster.
    pub lifetime_by_cluster: Vec<LogHistogram>,
    /// Fetch→commit lifetime per (cluster, hw context).
    pub lifetime_by_thread: Vec<((u32, u32), LogHistogram)>,
    /// Committed instructions per (cluster, hw context).
    pub committed_by_thread: Vec<((u32, u32), u64)>,
    /// Load-to-use latency (load issue → data available), machine-wide.
    pub load_use: LogHistogram,
    /// Load-to-use latency per NUMA node (chip).
    pub load_use_by_node: Vec<LogHistogram>,
    /// MSHR residency: fill latency of every access past the L1.
    pub mshr_residency: LogHistogram,
    /// Instruction-window (= ROB) occupancy snapshots, per cluster.
    pub window_occ: Vec<LogHistogram>,
    /// Ready-but-unissued entry counts, per cluster.
    pub ready_occ: Vec<LogHistogram>,
    /// `(cycle, interval IPC)` samples at each interval boundary.
    pub ipc_timeline: Vec<(u64, f64)>,
    /// The Perfetto/Chrome trace-event document for this run.
    pub trace: PerfettoTrace,
    /// Occupancy slices beyond the cap that were counted but not kept.
    pub slices_dropped: u64,
    /// Thread migrations completed by the scheduling policy (0 under the
    /// static policy).
    pub migrations: u64,
    /// Total cycles migrating threads spent between leaving their old
    /// context and resuming at the new one.
    pub migration_wait_cycles: u64,
}

/// One `name  summary` line, indented two spaces per `depth`.
fn hist_line(out: &mut String, depth: usize, name: &str, h: &LogHistogram) {
    let _ = writeln!(
        out,
        "{:indent$}{name:<24} {}",
        "",
        h.summary(),
        indent = depth * 2
    );
}

impl MetricsReport {
    /// The human-readable report: attribution tree, histogram table,
    /// and the IPC-timeline envelope.
    pub fn render_text(&self) -> String {
        let mut out = self.topdown.render_text();
        out.push_str("\nhistograms (cycles unless noted):\n");
        for (c, h) in self.lifetime_by_cluster.iter().enumerate() {
            hist_line(&mut out, 1, &format!("fetch_to_commit/c{c}"), h);
        }
        for ((c, t), h) in &self.lifetime_by_thread {
            hist_line(&mut out, 2, &format!("thread c{c}/t{t}"), h);
        }
        hist_line(&mut out, 1, "load_to_use", &self.load_use);
        for (n, h) in self.load_use_by_node.iter().enumerate() {
            if h.count() > 0 && self.load_use_by_node.len() > 1 {
                hist_line(&mut out, 2, &format!("node {n}"), h);
            }
        }
        hist_line(&mut out, 1, "mshr_residency", &self.mshr_residency);
        out.push_str("occupancy (window entries):\n");
        for (c, h) in self.window_occ.iter().enumerate() {
            hist_line(&mut out, 1, &format!("window/c{c}"), h);
        }
        for (c, h) in self.ready_occ.iter().enumerate() {
            hist_line(&mut out, 1, &format!("ready/c{c}"), h);
        }
        if !self.ipc_timeline.is_empty() {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &(_, ipc) in &self.ipc_timeline {
                lo = lo.min(ipc);
                hi = hi.max(ipc);
            }
            let _ = writeln!(
                out,
                "ipc timeline: {} samples, min {lo:.2}, max {hi:.2}",
                self.ipc_timeline.len()
            );
        }
        if self.migrations > 0 {
            let _ = writeln!(
                out,
                "thread migrations: {} (avg wait {:.0} cycles)",
                self.migrations,
                self.migration_wait_cycles as f64 / self.migrations as f64
            );
        }
        if self.slices_dropped > 0 {
            let _ = writeln!(
                out,
                "note: {} perfetto occupancy slices beyond the cap were dropped",
                self.slices_dropped
            );
        }
        out
    }

    /// The report as one JSON object (Perfetto trace *not* inlined —
    /// export it separately with
    /// [`write_perfetto`](MetricsReport::write_perfetto)).
    pub fn to_value(&self) -> Value {
        let hist_vec =
            |v: &[LogHistogram]| Value::Array(v.iter().map(LogHistogram::to_value).collect());
        let keyed = |v: &[((u32, u32), LogHistogram)]| {
            Value::Object(
                v.iter()
                    .map(|((c, t), h)| (format!("c{c}/t{t}"), h.to_value()))
                    .collect(),
            )
        };
        Value::Object(vec![
            ("topdown".into(), self.topdown.to_value()),
            (
                "histograms".into(),
                Value::Object(vec![
                    (
                        "fetch_to_commit_by_cluster".into(),
                        hist_vec(&self.lifetime_by_cluster),
                    ),
                    (
                        "fetch_to_commit_by_thread".into(),
                        keyed(&self.lifetime_by_thread),
                    ),
                    ("load_to_use".into(), self.load_use.to_value()),
                    (
                        "load_to_use_by_node".into(),
                        hist_vec(&self.load_use_by_node),
                    ),
                    ("mshr_residency".into(), self.mshr_residency.to_value()),
                    ("window_occ_by_cluster".into(), hist_vec(&self.window_occ)),
                    ("ready_occ_by_cluster".into(), hist_vec(&self.ready_occ)),
                ]),
            ),
            (
                "committed_by_thread".into(),
                Value::Object(
                    self.committed_by_thread
                        .iter()
                        .map(|((c, t), n)| (format!("c{c}/t{t}"), Value::U64(*n)))
                        .collect(),
                ),
            ),
            (
                "ipc_timeline".into(),
                Value::Array(
                    self.ipc_timeline
                        .iter()
                        .map(|&(cycle, ipc)| Value::Array(vec![Value::U64(cycle), Value::F64(ipc)]))
                        .collect(),
                ),
            ),
            (
                "perfetto_events".into(),
                Value::U64(self.trace.len() as u64),
            ),
            (
                "perfetto_slices_dropped".into(),
                Value::U64(self.slices_dropped),
            ),
            ("migrations".into(), Value::U64(self.migrations)),
            (
                "migration_wait_cycles".into(),
                Value::U64(self.migration_wait_cycles),
            ),
        ])
    }

    /// Write the JSON report (pretty-printed) to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut out = String::new();
        self.to_value().render_pretty(&mut out);
        out.push('\n');
        std::fs::write(path, out).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("writing metrics report {}: {e}", path.display()),
            )
        })
    }

    /// Write the Perfetto trace-event JSON to `path`.
    pub fn write_perfetto(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.trace.write(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topdown::AttributionTree;

    fn sample() -> MetricsReport {
        let mut lifetime = LogHistogram::new();
        lifetime.record(12);
        lifetime.record(40);
        let mut loads = LogHistogram::new();
        loads.record(2);
        MetricsReport {
            topdown: AttributionTree::from_slots(
                10.0,
                &[0.0, 0.0, 6.0, 0.0, 0.0, 0.0, 4.0],
                20,
                5,
                10,
            ),
            lifetime_by_cluster: vec![lifetime.clone()],
            lifetime_by_thread: vec![((0, 0), lifetime)],
            committed_by_thread: vec![((0, 0), 2)],
            load_use: loads.clone(),
            load_use_by_node: vec![loads],
            mshr_residency: LogHistogram::new(),
            window_occ: vec![LogHistogram::new()],
            ready_occ: vec![LogHistogram::new()],
            ipc_timeline: vec![(99, 2.0), (199, 1.5)],
            trace: PerfettoTrace::new(),
            slices_dropped: 0,
            migrations: 0,
            migration_wait_cycles: 0,
        }
    }

    #[test]
    fn text_report_names_every_section() {
        let text = sample().render_text();
        for needle in [
            "top-down slot accounting",
            "fetch_to_commit/c0",
            "thread c0/t0",
            "load_to_use",
            "mshr_residency",
            "window/c0",
            "ipc timeline: 2 samples",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn migrations_line_appears_only_when_nonzero() {
        let mut r = sample();
        assert!(!r.render_text().contains("thread migrations"));
        r.migrations = 4;
        r.migration_wait_cycles = 500;
        let text = r.render_text();
        assert!(
            text.contains("thread migrations: 4 (avg wait 125 cycles)"),
            "{text}"
        );
        let v = r.to_value();
        assert_eq!(v.get("migrations").and_then(Value::as_u64), Some(4));
        assert_eq!(
            v.get("migration_wait_cycles").and_then(Value::as_u64),
            Some(500)
        );
    }

    #[test]
    fn json_report_parses_back_and_keeps_structure() {
        let mut out = String::new();
        sample().to_value().render_pretty(&mut out);
        let v: Value = serde_json::from_str(&out).expect("valid JSON");
        assert!(v.get("topdown").is_some());
        let hists = v.get("histograms").unwrap();
        assert_eq!(
            hists
                .get("load_to_use")
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let ipc = v.get("ipc_timeline").and_then(Value::as_array).unwrap();
        assert_eq!(ipc.len(), 2);
    }

    #[test]
    fn report_files_land_on_disk() {
        let dir = std::env::temp_dir().join("csmt_metrics_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let r = sample();
        let json = dir.join("report.json");
        let trace = dir.join("trace.json");
        r.write_json(&json).unwrap();
        r.write_perfetto(&trace).unwrap();
        let parsed: Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        crate::perfetto::validate_trace(&parsed).unwrap();
        assert!(std::fs::read_to_string(&json).unwrap().contains("topdown"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
