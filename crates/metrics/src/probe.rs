//! [`MetricsProbe`]: turns the raw probe event stream into histograms,
//! a top-down attribution tree, IPC/occupancy timelines, and a Perfetto
//! trace — the observability layer ROADMAP item 2's dynamic scheduling
//! policies will read their online signals from.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use csmt_isa::fxhash::FxHashMap;
use csmt_trace::{
    CacheEvent, CycleStats, FetchEvent, MigrationEvent, MigrationEventKind, Probe, ServiceLevel,
    StageEvent, WindowOccEvent,
};

use crate::hist::LogHistogram;
use crate::perfetto::PerfettoTrace;
use crate::report::MetricsReport;
use crate::topdown::AttributionTree;

/// Upper bound on Perfetto occupancy slices, so a long run cannot
/// balloon the trace file; further spans are counted but not emitted.
const SLICE_CAP: usize = 100_000;

/// What we remember about an in-flight instruction between its fetch and
/// its commit/squash.
#[derive(Clone, Copy)]
struct InFlight {
    fetch_cycle: u64,
    thread: u32,
}

/// Per-(cluster, hw context) pipeline-occupancy state for the Perfetto
/// track: how many instructions are in flight, and the open span.
#[derive(Clone, Copy, Default)]
struct CtxSpan {
    inflight: u32,
    span_start: u64,
    named: bool,
}

/// A probe that accumulates every observability artifact of this crate
/// in one pass over the event stream. Enables the gated
/// `WANTS_OCC_STATS` channel (occupancy snapshots) on top of the default
/// instruction/cache/cycle channels; composing it with another probe via
/// the tuple impl leaves that probe's event stream bit-for-bit unchanged
/// (enforced by `tests/metrics_reconcile.rs`).
///
/// Call [`finish`](MetricsProbe::finish) after the run to obtain the
/// [`MetricsReport`].
pub struct MetricsProbe {
    interval: u64,
    inflight: FxHashMap<(u32, u64), InFlight>,
    spans: FxHashMap<(u32, u32), CtxSpan>,
    lifetime_by_cluster: Vec<LogHistogram>,
    lifetime_by_thread: FxHashMap<(u32, u32), LogHistogram>,
    committed_by_thread: FxHashMap<(u32, u32), u64>,
    load_use: LogHistogram,
    load_use_by_node: Vec<LogHistogram>,
    mshr_residency: LogHistogram,
    window_occ: Vec<LogHistogram>,
    ready_occ: Vec<LogHistogram>,
    /// Most recent occupancy snapshot per cluster, for the counter track.
    last_occ: Vec<(u32, u32)>,
    miss_heap: BinaryHeap<Reverse<u64>>,
    trace: PerfettoTrace,
    slices_emitted: usize,
    slices_dropped: u64,
    prev_snap: CycleStats,
    final_snap: CycleStats,
    final_cycle: u64,
    ipc_timeline: Vec<(u64, f64)>,
    migrations: u64,
    migration_wait: u64,
}

/// Grow a per-cluster vector of histograms up to `idx`.
fn at_mut(v: &mut Vec<LogHistogram>, idx: usize) -> &mut LogHistogram {
    if v.len() <= idx {
        v.resize_with(idx + 1, LogHistogram::new);
    }
    &mut v[idx]
}

impl MetricsProbe {
    /// A fresh collector. `interval` is the counter-track sampling period
    /// in cycles (also the IPC-timeline resolution); must be non-zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "metrics interval must be non-zero");
        MetricsProbe {
            interval,
            inflight: FxHashMap::default(),
            spans: FxHashMap::default(),
            lifetime_by_cluster: Vec::new(),
            lifetime_by_thread: FxHashMap::default(),
            committed_by_thread: FxHashMap::default(),
            load_use: LogHistogram::new(),
            load_use_by_node: Vec::new(),
            mshr_residency: LogHistogram::new(),
            window_occ: Vec::new(),
            ready_occ: Vec::new(),
            last_occ: Vec::new(),
            miss_heap: BinaryHeap::new(),
            trace: PerfettoTrace::new(),
            slices_emitted: 0,
            slices_dropped: 0,
            prev_snap: CycleStats::default(),
            final_snap: CycleStats::default(),
            final_cycle: 0,
            ipc_timeline: Vec::new(),
            migrations: 0,
            migration_wait: 0,
        }
    }

    /// Close one context's open occupancy span at `end` (exclusive).
    fn close_span(&mut self, cluster: u32, ctx: u32, end: u64) {
        let Some(s) = self.spans.get_mut(&(cluster, ctx)) else {
            return;
        };
        if self.slices_emitted < SLICE_CAP {
            let start = s.span_start;
            self.trace
                .occupancy_slice(cluster, ctx, start, end.saturating_sub(start));
            self.slices_emitted += 1;
        } else {
            self.slices_dropped += 1;
        }
    }

    /// Retire one instruction from the in-flight map; records the
    /// lifetime histogram only for committed (not squashed) instructions.
    fn retire(&mut self, e: StageEvent, committed: bool) {
        let Some(fl) = self.inflight.remove(&(e.cluster, e.uid)) else {
            return;
        };
        if committed {
            at_mut(&mut self.lifetime_by_cluster, e.cluster as usize)
                .record(e.cycle - fl.fetch_cycle);
            self.lifetime_by_thread
                .entry((e.cluster, fl.thread))
                .or_default()
                .record(e.cycle - fl.fetch_cycle);
            *self
                .committed_by_thread
                .entry((e.cluster, fl.thread))
                .or_insert(0) += 1;
        }
        let key = (e.cluster, fl.thread);
        let span = self.spans.entry(key).or_default();
        span.inflight = span.inflight.saturating_sub(1);
        if span.inflight == 0 {
            // Slice covers [span_start, e.cycle]: the instruction was
            // still in flight this cycle.
            self.close_span(e.cluster, fl.thread, e.cycle + 1);
        }
    }

    /// Finalize: close open spans, flush trailing timeline samples, and
    /// build the report. `MetricsProbe` is consumed — the report owns the
    /// Perfetto trace.
    pub fn finish(mut self) -> MetricsReport {
        // Close any spans still open at the end of the run.
        let mut open: Vec<(u32, u32)> = self
            .spans
            .iter()
            .filter(|(_, s)| s.inflight > 0)
            .map(|(&k, _)| k)
            .collect();
        open.sort_unstable();
        for (cluster, ctx) in open {
            self.close_span(cluster, ctx, self.final_cycle + 1);
        }
        // Trailing partial interval for the IPC timeline.
        if self.final_snap.cycles > self.prev_snap.cycles {
            self.sample_counters(self.final_cycle);
        }

        let s = &self.final_snap;
        let topdown =
            AttributionTree::from_slots(s.useful, &s.wasted, s.slots, s.cycles, s.committed);
        let mut by_thread: Vec<((u32, u32), LogHistogram)> = self
            .lifetime_by_thread
            .iter()
            .map(|(&k, h)| (k, h.clone()))
            .collect();
        by_thread.sort_unstable_by_key(|(k, _)| *k);
        let mut committed_by_thread: Vec<((u32, u32), u64)> = self
            .committed_by_thread
            .iter()
            .map(|(&k, &n)| (k, n))
            .collect();
        committed_by_thread.sort_unstable_by_key(|(k, _)| *k);
        MetricsReport {
            topdown,
            lifetime_by_cluster: self.lifetime_by_cluster,
            lifetime_by_thread: by_thread,
            committed_by_thread,
            load_use: self.load_use,
            load_use_by_node: self.load_use_by_node,
            mshr_residency: self.mshr_residency,
            window_occ: self.window_occ,
            ready_occ: self.ready_occ,
            ipc_timeline: self.ipc_timeline,
            trace: self.trace,
            slices_dropped: self.slices_dropped,
            migrations: self.migrations,
            migration_wait_cycles: self.migration_wait,
        }
    }

    /// Emit one counter-track sample set at `cycle` and advance the
    /// interval baseline.
    fn sample_counters(&mut self, cycle: u64) {
        let d_cycles = self.final_snap.cycles - self.prev_snap.cycles;
        let d_committed = self.final_snap.committed - self.prev_snap.committed;
        let ipc = if d_cycles > 0 {
            d_committed as f64 / d_cycles as f64
        } else {
            0.0
        };
        self.ipc_timeline.push((cycle, ipc));
        self.trace.counter("ipc", cycle, ipc);
        self.trace
            .counter("inflight_misses", cycle, self.miss_heap.len() as f64);
        for (cluster, &(occ, _ready)) in self.last_occ.iter().enumerate() {
            self.trace
                .counter(&format!("window_occ/{cluster}"), cycle, f64::from(occ));
        }
        self.prev_snap = self.final_snap;
    }
}

impl Probe for MetricsProbe {
    const WANTS_INST_EVENTS: bool = true;
    const WANTS_CACHE_EVENTS: bool = true;
    const WANTS_CYCLE_STATS: bool = true;
    const WANTS_OCC_STATS: bool = true;
    const WANTS_SCHED_EVENTS: bool = true;

    fn fetch(&mut self, e: FetchEvent) {
        self.inflight.insert(
            (e.cluster, e.uid),
            InFlight {
                fetch_cycle: e.cycle,
                thread: e.thread,
            },
        );
        let span = self.spans.entry((e.cluster, e.thread)).or_default();
        if !span.named {
            span.named = true;
            self.trace.thread_track(e.cluster, e.thread);
        }
        if span.inflight == 0 {
            span.span_start = e.cycle;
        }
        span.inflight += 1;
    }

    fn commit(&mut self, e: StageEvent) {
        self.retire(e, true);
    }

    fn squash(&mut self, e: StageEvent) {
        self.retire(e, false);
    }

    fn cache_access(&mut self, e: CacheEvent) {
        let latency = e.complete_at.saturating_sub(e.cycle);
        if !e.write {
            self.load_use.record(latency);
            at_mut(&mut self.load_use_by_node, e.node as usize).record(latency);
        }
        if e.level != ServiceLevel::L1 {
            // Anything past the L1 allocated (or merged into) an MSHR
            // entry that lives until the fill: its residency is the
            // remaining service latency.
            self.mshr_residency.record(latency);
            self.miss_heap.push(Reverse(e.complete_at));
        }
    }

    fn migration(&mut self, e: MigrationEvent) {
        match e.kind {
            MigrationEventKind::Attach => self.trace.sched_instant(
                &format!("attach t{} c{}/x{}", e.thread, e.cluster, e.ctx),
                e.cycle,
            ),
            MigrationEventKind::Depart => self.trace.sched_instant(
                &format!("depart t{} c{}/x{}", e.thread, e.cluster, e.ctx),
                e.cycle,
            ),
            MigrationEventKind::Arrive => {
                self.migrations += 1;
                self.migration_wait += e.wait;
                self.trace.sched_instant(
                    &format!("arrive t{} c{}/x{} +{}", e.thread, e.cluster, e.ctx, e.wait),
                    e.cycle,
                );
            }
        }
    }

    fn window_occ(&mut self, e: WindowOccEvent) {
        let idx = e.cluster as usize;
        at_mut(&mut self.window_occ, idx).record(u64::from(e.occupied));
        at_mut(&mut self.ready_occ, idx).record(u64::from(e.ready));
        if self.last_occ.len() <= idx {
            self.last_occ.resize(idx + 1, (0, 0));
        }
        self.last_occ[idx] = (e.occupied, e.ready);
    }

    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        if let Some(s) = stats {
            self.final_snap = *s;
        }
        self.final_cycle = cycle;
        while let Some(&Reverse(t)) = self.miss_heap.peek() {
            if t > cycle {
                break;
            }
            self.miss_heap.pop();
        }
        if (cycle + 1).is_multiple_of(self.interval) {
            self.sample_counters(cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmt_isa::OpClass;

    fn fetch(cluster: u32, thread: u32, uid: u64, cycle: u64) -> FetchEvent {
        FetchEvent {
            cycle,
            cluster,
            thread,
            uid,
            pc: 0x400 + uid * 4,
            op: OpClass::IntAlu,
            wrong_path: false,
        }
    }

    fn stage(cluster: u32, uid: u64, cycle: u64) -> StageEvent {
        StageEvent {
            cycle,
            cluster,
            uid,
        }
    }

    fn snap(cycles: u64, committed: u64) -> CycleStats {
        CycleStats {
            useful: committed as f64,
            wasted: [0.0; 7],
            slots: cycles * 4,
            cycles,
            committed,
            ..CycleStats::default()
        }
    }

    #[test]
    fn lifetime_histogram_tracks_fetch_to_commit() {
        let mut p = MetricsProbe::new(1000);
        p.fetch(fetch(0, 1, 7, 10));
        p.fetch(fetch(0, 1, 8, 11));
        p.commit(stage(0, 7, 25)); // lifetime 15
        p.squash(stage(0, 8, 30)); // squashed: not in the histogram
        p.cycle_end(30, Some(&snap(31, 1)));
        let r = p.finish();
        assert_eq!(r.lifetime_by_cluster[0].count(), 1);
        assert_eq!(r.lifetime_by_cluster[0].max(), 15);
        assert_eq!(r.lifetime_by_thread.len(), 1);
        assert_eq!(r.lifetime_by_thread[0].0, (0, 1));
        assert_eq!(r.committed_by_thread, vec![((0, 1), 1)]);
    }

    #[test]
    fn load_use_and_mshr_histograms_split_by_service_level() {
        let mut p = MetricsProbe::new(1000);
        let access = |cycle, write, level, complete_at| CacheEvent {
            cycle,
            node: 0,
            addr: 0x1000,
            write,
            level,
            tlb_miss: false,
            complete_at,
        };
        p.cache_access(access(10, false, ServiceLevel::L1, 12)); // load, hit
        p.cache_access(access(20, false, ServiceLevel::L2, 35)); // load, miss
        p.cache_access(access(30, true, ServiceLevel::LocalMem, 90)); // store, miss
        p.cycle_end(100, Some(&snap(101, 5)));
        let r = p.finish();
        assert_eq!(r.load_use.count(), 2); // both loads, not the store
        assert_eq!(r.mshr_residency.count(), 2); // both misses, not the L1 hit
        assert_eq!(r.load_use.min(), 2);
        assert_eq!(r.mshr_residency.max(), 60);
    }

    #[test]
    fn occupancy_snapshots_feed_per_cluster_histograms() {
        let mut p = MetricsProbe::new(1000);
        for (cycle, occ, ready) in [(0, 10, 2), (1, 12, 4), (2, 12, 0)] {
            p.window_occ(WindowOccEvent {
                cycle,
                cluster: 1,
                occupied: occ,
                ready,
            });
        }
        p.cycle_end(2, Some(&snap(3, 0)));
        let r = p.finish();
        assert_eq!(r.window_occ[1].count(), 3);
        assert_eq!(r.window_occ[1].max(), 12);
        assert_eq!(r.ready_occ[1].max(), 4);
        assert_eq!(r.window_occ[0].count(), 0); // untouched cluster present but empty
    }

    #[test]
    fn topdown_tree_mirrors_the_final_cycle_stats() {
        let mut p = MetricsProbe::new(1000);
        let mut s = snap(50, 120);
        s.wasted[2] = 30.0; // memory
        s.wasted[5] = 10.0; // sync
        p.cycle_end(49, Some(&s));
        let r = p.finish();
        assert_eq!(r.topdown.total_slots, 200);
        assert_eq!(r.topdown.committed, 120);
        assert_eq!(r.topdown.node("memory_bound").unwrap().slots, 30.0);
        assert_eq!(r.topdown.node("sync_bound").unwrap().slots, 10.0);
    }

    #[test]
    fn ipc_timeline_samples_at_interval_boundaries_plus_tail() {
        let mut p = MetricsProbe::new(10);
        for c in 0..25u64 {
            p.cycle_end(c, Some(&snap(c + 1, (c + 1) * 2)));
        }
        let r = p.finish();
        // Boundaries at cycles 9 and 19, plus the trailing partial.
        assert_eq!(r.ipc_timeline.len(), 3);
        assert_eq!(r.ipc_timeline[0].0, 9);
        assert_eq!(r.ipc_timeline[1].0, 19);
        assert_eq!(r.ipc_timeline[2].0, 24);
        for &(_, ipc) in &r.ipc_timeline {
            assert!((ipc - 2.0).abs() < 1e-9, "ipc {ipc}");
        }
    }

    #[test]
    fn perfetto_spans_merge_overlapping_instructions() {
        let mut p = MetricsProbe::new(1000);
        // Two overlapping instructions on one context: one span.
        p.fetch(fetch(0, 0, 1, 5));
        p.fetch(fetch(0, 0, 2, 6));
        p.commit(stage(0, 1, 10));
        p.commit(stage(0, 2, 14));
        // A third after a gap: second span.
        p.fetch(fetch(0, 0, 3, 20));
        p.commit(stage(0, 3, 22));
        p.cycle_end(25, Some(&snap(26, 3)));
        let r = p.finish();
        let v = r.trace.to_value();
        let slices: Vec<_> = v
            .get("traceEvents")
            .and_then(serde::Value::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].get("ts").and_then(serde::Value::as_u64), Some(5));
        assert_eq!(
            slices[0].get("dur").and_then(serde::Value::as_u64),
            Some(10) // [5, 14]: still in flight on its commit cycle
        );
        assert_eq!(slices[1].get("ts").and_then(serde::Value::as_u64), Some(20));
        assert_eq!(r.slices_dropped, 0);
    }
}
