//! Perfetto / Chrome trace-event export.
//!
//! Builds a JSON document in the [Trace Event Format] that both
//! `chrome://tracing` and [ui.perfetto.dev] load directly: open the UI,
//! drag the file in, and every hardware thread appears as its own track
//! with pipeline-occupancy slices, alongside counter tracks for IPC,
//! in-flight misses, and window occupancy.
//!
//! Track layout (see DESIGN.md §12):
//!
//! * **pid 1 "pipeline"** — one track (tid) per (cluster, hw context)
//!   with `X` (complete) slices covering the spans when that context had
//!   instructions in flight.
//! * **pid 2 "counters"** — `C` counter events: `ipc` and
//!   `inflight_misses` machine-wide, `window_occ/<cluster>` per cluster.
//! * **pid 3 "sched"** — `i` instant events marking thread-scheduler
//!   actions (attach / depart / arrive of migrating threads).
//!
//! Timestamps are simulated **cycles** reported in the `ts` microsecond
//! field (1 cycle = 1 µs), which keeps the numbers readable in the UI.
//! The builder is deterministic: identical event sequences produce
//! byte-identical documents.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use std::io::{self, Write};
use std::path::Path;

use serde::Value;

/// Synthetic process id for per-thread pipeline tracks.
const PID_PIPELINE: u64 = 1;
/// Synthetic process id for counter tracks.
const PID_COUNTERS: u64 = 2;
/// Synthetic process id for the thread-scheduler instant track.
const PID_SCHED: u64 = 3;

/// Builds a Chrome-trace-event JSON document from pipeline metrics.
#[derive(Debug, Default)]
pub struct PerfettoTrace {
    events: Vec<Value>,
}

impl PerfettoTrace {
    /// An empty trace with the two process-name metadata records.
    pub fn new() -> Self {
        let mut t = PerfettoTrace { events: Vec::new() };
        t.process_name(PID_PIPELINE, "pipeline");
        t.process_name(PID_COUNTERS, "counters");
        t.process_name(PID_SCHED, "sched");
        t
    }

    fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(Value::Object(vec![
            ("ph".into(), Value::Str("M".into())),
            ("name".into(), Value::Str("process_name".into())),
            ("pid".into(), Value::U64(pid)),
            ("tid".into(), Value::U64(0)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str(name.into()))]),
            ),
        ]));
    }

    /// Stable tid for a (cluster, hardware context) pair.
    fn tid(cluster: u32, ctx: u32) -> u64 {
        u64::from(cluster) * 64 + u64::from(ctx)
    }

    /// Name the track of one (cluster, hw context) pair.
    pub fn thread_track(&mut self, cluster: u32, ctx: u32) {
        self.events.push(Value::Object(vec![
            ("ph".into(), Value::Str("M".into())),
            ("name".into(), Value::Str("thread_name".into())),
            ("pid".into(), Value::U64(PID_PIPELINE)),
            ("tid".into(), Value::U64(Self::tid(cluster, ctx))),
            (
                "args".into(),
                Value::Object(vec![(
                    "name".into(),
                    Value::Str(format!("cluster {cluster} / ctx {ctx}")),
                )]),
            ),
        ]));
    }

    /// One pipeline-occupancy slice on a (cluster, hw context) track:
    /// the context had instructions in flight from `start` for `dur`
    /// cycles.
    pub fn occupancy_slice(&mut self, cluster: u32, ctx: u32, start: u64, dur: u64) {
        self.events.push(Value::Object(vec![
            ("ph".into(), Value::Str("X".into())),
            ("name".into(), Value::Str("in-flight".into())),
            ("cat".into(), Value::Str("pipeline".into())),
            ("pid".into(), Value::U64(PID_PIPELINE)),
            ("tid".into(), Value::U64(Self::tid(cluster, ctx))),
            ("ts".into(), Value::U64(start)),
            ("dur".into(), Value::U64(dur.max(1))),
        ]));
    }

    /// One counter sample: `name` takes `value` at `cycle`. Counters with
    /// the same name form one stepped track in the UI.
    pub fn counter(&mut self, name: &str, cycle: u64, value: f64) {
        self.events.push(Value::Object(vec![
            ("ph".into(), Value::Str("C".into())),
            ("name".into(), Value::Str(name.to_string())),
            ("pid".into(), Value::U64(PID_COUNTERS)),
            ("tid".into(), Value::U64(0)),
            ("ts".into(), Value::U64(cycle)),
            (
                "args".into(),
                Value::Object(vec![("value".into(), Value::F64(value))]),
            ),
        ]));
    }

    /// One thread-scheduler instant on the sched track: `name` happened
    /// at `cycle` (process scope, so it renders as a flag in the UI).
    pub fn sched_instant(&mut self, name: &str, cycle: u64) {
        self.events.push(Value::Object(vec![
            ("ph".into(), Value::Str("i".into())),
            ("name".into(), Value::Str(name.to_string())),
            ("cat".into(), Value::Str("sched".into())),
            ("pid".into(), Value::U64(PID_SCHED)),
            ("tid".into(), Value::U64(0)),
            ("ts".into(), Value::U64(cycle)),
            ("s".into(), Value::Str("p".into())),
        ]));
    }

    /// Number of events recorded so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if only the initial metadata is present.
    pub fn is_empty(&self) -> bool {
        self.events.len() <= 3
    }

    /// The whole document as one JSON value:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("traceEvents".into(), Value::Array(self.events.clone())),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            (
                "otherData".into(),
                Value::Object(vec![("exporter".into(), Value::Str("csmt-metrics".into()))]),
            ),
        ])
    }

    /// Render the document as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_value().render(&mut out);
        out
    }

    /// Write the document to `path` (with a path-contextful error).
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut f = std::fs::File::create(path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("creating perfetto trace {}: {e}", path.display()),
            )
        })?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")
    }
}

/// Validate that `doc` is a loadable trace-event document: a
/// `traceEvents` array whose members each carry a known phase (`X`, `C`,
/// `i`, or `M`), a `pid`, a `tid`, a `name`, and — for non-metadata
/// events — a non-negative `ts` (plus `dur` for `X`, `args.value` for
/// `C`).
/// Returns the event count, or a description of the first malformed
/// event. This is the schema check the unit tests and
/// `tests/metrics_reconcile.rs` run over real exported traces.
pub fn validate_trace(doc: &Value) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["pid", "tid"] {
            e.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event {i}: missing {key}"))?;
        }
        e.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "M" => {}
            "X" => {
                e.get("ts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X without ts"))?;
                let dur = e
                    .get("dur")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if dur == 0 {
                    return Err(format!("event {i}: zero-duration slice"));
                }
            }
            "C" => {
                e.get("ts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: C without ts"))?;
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: C without args.value"))?;
            }
            "i" => {
                e.get("ts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: i without ts"))?;
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> PerfettoTrace {
        let mut t = PerfettoTrace::new();
        t.thread_track(0, 1);
        t.occupancy_slice(0, 1, 10, 25);
        t.occupancy_slice(0, 1, 40, 5);
        t.counter("ipc", 100, 2.5);
        t.counter("window_occ/0", 100, 24.0);
        t
    }

    #[test]
    fn document_roundtrips_through_json_and_validates() {
        let t = build_sample();
        let parsed: Value = serde_json::from_str(&t.to_json()).expect("valid JSON");
        let n = validate_trace(&parsed).expect("schema-clean");
        assert_eq!(n, t.len());
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
    }

    #[test]
    fn validation_rejects_malformed_events() {
        let mut missing_ph = build_sample().to_value();
        if let Value::Object(fields) = &mut missing_ph {
            if let Value::Array(events) = &mut fields[0].1 {
                events.push(Value::Object(vec![(
                    "name".into(),
                    Value::Str("bad".into()),
                )]));
            }
        }
        let err = validate_trace(&missing_ph).expect_err("must reject");
        assert!(err.contains("missing ph"), "{err}");

        assert!(validate_trace(&Value::Object(vec![])).is_err());
    }

    #[test]
    fn slices_and_counters_land_on_distinct_pids() {
        let t = build_sample();
        let v = t.to_value();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let pid_of = |ph: &str| {
            events
                .iter()
                .find(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
                .and_then(|e| e.get("pid"))
                .and_then(Value::as_u64)
                .unwrap()
        };
        assert_ne!(pid_of("X"), pid_of("C"));
    }

    #[test]
    fn zero_duration_slices_are_widened_to_one_cycle() {
        let mut t = PerfettoTrace::new();
        t.occupancy_slice(2, 0, 7, 0);
        let parsed: Value = serde_json::from_str(&t.to_json()).unwrap();
        validate_trace(&parsed).expect("widened slice passes validation");
    }

    #[test]
    fn sched_instants_validate_and_land_on_the_sched_pid() {
        let mut t = PerfettoTrace::new();
        t.sched_instant("arrive t3 c1/x2", 4200);
        let parsed: Value = serde_json::from_str(&t.to_json()).unwrap();
        validate_trace(&parsed).expect("instant passes validation");
        let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .expect("instant present");
        assert_eq!(inst.get("pid").and_then(Value::as_u64), Some(PID_SCHED));
        assert_eq!(inst.get("ts").and_then(Value::as_u64), Some(4200));
    }

    #[test]
    fn tids_are_stable_and_distinct_across_clusters() {
        assert_ne!(PerfettoTrace::tid(0, 1), PerfettoTrace::tid(1, 0));
        assert_eq!(PerfettoTrace::tid(3, 2), 3 * 64 + 2);
    }
}
