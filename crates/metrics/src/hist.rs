//! Deterministic log-bucketed histograms.
//!
//! The bucketing scheme is HdrHistogram-lite: values below
//! [`LINEAR_LIMIT`] get one exact bucket each; above it, every power-of-two
//! octave is split into [`SUB_BUCKETS`] linear sub-buckets, so relative
//! resolution stays within `1/SUB_BUCKETS` (12.5%) at any magnitude. All
//! state is integer, so identical value sequences produce identical
//! histograms on every platform — percentiles are part of the golden
//! surface, not an approximation that drifts.

use serde::Value;

/// Values below this limit get an exact bucket each.
const LINEAR_LIMIT: u64 = 32;
/// Linear sub-buckets per power-of-two octave above the linear range.
const SUB_BUCKETS: u64 = 8;
/// Octaves covered above the linear range: values up to `2^(5+OCTAVES)`
/// bucket exactly; anything larger clamps into the final bucket.
const OCTAVES: u64 = 40;
/// Total bucket count.
const BUCKETS: usize = (LINEAR_LIMIT + OCTAVES * SUB_BUCKETS) as usize;

/// A log-bucketed histogram of `u64` samples (cycle counts, occupancies).
///
/// Tracks exact count/sum/min/max alongside the buckets; percentiles are
/// resolved to a bucket's inclusive upper bound, so they are exact for
/// values in the linear range and within 12.5% above it, and
/// [`p50`](LogHistogram::p50)/[`p90`](LogHistogram::p90)/
/// [`p99`](LogHistogram::p99) of an empty histogram are 0.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

/// Bucket index for a value: identity in the linear range, then
/// octave/sub-bucket split.
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    // The octave of v: 0 for [32,64), 1 for [64,128), ...
    let octave = 63 - v.leading_zeros() as u64 - 5;
    let octave = octave.min(OCTAVES - 1);
    // Position of v within its octave, scaled to SUB_BUCKETS slots.
    // Shift (rather than multiply-then-shift) so huge values can't
    // overflow: SUB_BUCKETS is 2^3, so ·8 >> (octave+5) == >> (octave+2).
    let lo = LINEAR_LIMIT << octave;
    let sub = (v - lo) >> (octave + 2);
    (LINEAR_LIMIT + octave * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)) as usize
}

/// Inclusive upper bound of a bucket — the value percentile queries report.
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_LIMIT {
        return i;
    }
    let octave = (i - LINEAR_LIMIT) / SUB_BUCKETS;
    let sub = (i - LINEAR_LIMIT) % SUB_BUCKETS;
    let lo = LINEAR_LIMIT << octave;
    let width = lo / SUB_BUCKETS;
    lo + (sub + 1) * width - 1
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q · count)`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One summary line: `n=.. mean=.. p50=.. p90=.. p99=.. max=..`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }

    /// The histogram as a JSON value: summary stats plus the non-empty
    /// buckets as `[upper_bound, count]` pairs (sparse, in value order).
    pub fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![Value::U64(bucket_upper(i)), Value::U64(c)]))
            .collect();
        Value::Object(vec![
            ("count".into(), Value::U64(self.count)),
            ("sum".into(), Value::U64(self.sum)),
            ("mean".into(), Value::F64(self.mean())),
            ("min".into(), Value::U64(self.min())),
            ("max".into(), Value::U64(self.max())),
            ("p50".into(), Value::U64(self.p50())),
            ("p90".into(), Value::U64(self.p90())),
            ("p99".into(), Value::U64(self.p99())),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn linear_range_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        // Every value below the limit has its own bucket: quantiles are
        // exact order statistics.
        assert_eq!(h.quantile(1.0 / LINEAR_LIMIT as f64), 0);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for v in [
            0,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            4096,
            1 << 20,
            1 << 40,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of({v}) = {b} < {prev}");
            assert!(b < BUCKETS);
            prev = b;
        }
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in (0..100_000u64).step_by(37) {
            let b = bucket_of(v);
            assert!(
                bucket_upper(b) >= v,
                "upper({b}) = {} < {v}",
                bucket_upper(b)
            );
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "value {v} not above bucket {b}-1");
            }
        }
    }

    #[test]
    fn percentile_error_is_bounded_above_linear_range() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        // p50 of 1..=10000 is 5000; log-bucket error ≤ 12.5%.
        let p50 = h.p50() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.125, "p50 = {p50}");
        let p99 = h.p99() as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.125, "p99 = {p99}");
    }

    #[test]
    fn quantiles_never_exceed_max() {
        let mut h = LogHistogram::new();
        h.record(100);
        h.record(101);
        assert_eq!(h.quantile(1.0), 101);
        assert!(h.p99() <= 101);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in 0..500u64 {
            let target = if v.is_multiple_of(2) { &mut a } else { &mut b };
            target.record(v * 3);
            both.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.p50(), both.p50());
        assert_eq!(a.p99(), both.p99());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
    }

    #[test]
    fn to_value_has_sparse_buckets_and_consistent_totals() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 2, 70] {
            h.record(v);
        }
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("sum").and_then(Value::as_u64), Some(74));
        let buckets = v.get("buckets").and_then(Value::as_array).unwrap();
        assert_eq!(buckets.len(), 3); // values 1, 2, and 70's bucket
        let total: u64 = buckets
            .iter()
            .map(|b| b.as_array().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(total, 4);
    }
}
