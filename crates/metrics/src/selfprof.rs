//! Host-side self-profiling: where the *simulator* spends wall-clock
//! time, phase by phase.
//!
//! [`HostProfiler`] is a probe that opts into the gated
//! `WANTS_HOST_PHASES` channel; the simulator then wraps each pipeline
//! phase (complete / commit / issue / fetch / account / memory /
//! cycle-end) in scoped timers and reports the elapsed nanoseconds here.
//! The numbers describe the host, not the simulated machine — they are
//! non-deterministic across runs and exist to answer "which phase should
//! the next performance PR attack".

use std::fmt::Write as _;

use csmt_trace::{HostPhase, Probe};

use serde::Value;

/// Accumulated wall-clock per simulator phase. `Memory` is nested inside
/// `Issue` (loads) and `Commit` (stores), so the renderer reports it
/// indented and excludes it from the total to avoid double-counting.
#[derive(Debug, Default)]
pub struct HostProfiler {
    nanos: [u64; HostPhase::ALL.len()],
    calls: [u64; HostPhase::ALL.len()],
}

impl HostProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accumulated nanoseconds for one phase.
    pub fn nanos(&self, phase: HostPhase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of timed executions of one phase.
    pub fn calls(&self, phase: HostPhase) -> u64 {
        self.calls[phase.index()]
    }

    /// Sum of all top-level phase nanos (`Memory` excluded: its time is
    /// already inside `Issue` and `Commit`).
    pub fn total_nanos(&self) -> u64 {
        HostPhase::ALL
            .into_iter()
            .filter(|p| *p != HostPhase::Memory)
            .map(|p| self.nanos(p))
            .sum()
    }

    /// Render the profile as an aligned table, phases in pipeline order,
    /// with per-call averages and shares of the (non-nested) total.
    pub fn render_text(&self) -> String {
        let total = self.total_nanos();
        let mut out =
            String::from("host self-profile (simulator wall-clock, not simulated time):\n");
        for phase in HostPhase::ALL {
            let ns = self.nanos(phase);
            let calls = self.calls(phase);
            let nested = phase == HostPhase::Memory;
            let share = if total == 0 || nested {
                String::from("     -")
            } else {
                format!("{:5.1}%", 100.0 * ns as f64 / total as f64)
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>12.3} ms  {share}  {:>10} calls  {:>7.0} ns/call{}",
                phase.label(),
                ns as f64 / 1e6,
                calls,
                if calls == 0 {
                    0.0
                } else {
                    ns as f64 / calls as f64
                },
                if nested {
                    "  (nested in issue/commit)"
                } else {
                    ""
                },
            );
        }
        let _ = writeln!(out, "  {:<12} {:>12.3} ms", "total", total as f64 / 1e6);
        out
    }

    /// The profile as JSON: per-phase `{nanos, calls}` plus the total.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = HostPhase::ALL
            .into_iter()
            .map(|p| {
                (
                    p.label().to_string(),
                    Value::Object(vec![
                        ("nanos".into(), Value::U64(self.nanos(p))),
                        ("calls".into(), Value::U64(self.calls(p))),
                    ]),
                )
            })
            .collect();
        fields.push(("total_nanos".into(), Value::U64(self.total_nanos())));
        Value::Object(fields)
    }
}

impl Probe for HostProfiler {
    const WANTS_INST_EVENTS: bool = false;
    const WANTS_CACHE_EVENTS: bool = false;
    const WANTS_CYCLE_STATS: bool = false;
    const WANTS_HOST_PHASES: bool = true;

    fn host_phase(&mut self, phase: HostPhase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        self.calls[phase.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase_and_excludes_nested_memory_from_total() {
        let mut p = HostProfiler::new();
        p.host_phase(HostPhase::Issue, 100);
        p.host_phase(HostPhase::Issue, 50);
        p.host_phase(HostPhase::Memory, 40); // nested inside the 150
        p.host_phase(HostPhase::Fetch, 10);
        assert_eq!(p.nanos(HostPhase::Issue), 150);
        assert_eq!(p.calls(HostPhase::Issue), 2);
        assert_eq!(p.nanos(HostPhase::Memory), 40);
        assert_eq!(p.total_nanos(), 160);
    }

    #[test]
    fn render_marks_memory_as_nested() {
        let mut p = HostProfiler::new();
        p.host_phase(HostPhase::Memory, 1_000_000);
        p.host_phase(HostPhase::Commit, 2_000_000);
        let text = p.render_text();
        assert!(text.contains("(nested in issue/commit)"), "{text}");
        assert!(text.contains("commit"), "{text}");
        assert!(text.contains("total"), "{text}");
    }

    #[test]
    fn json_covers_every_phase() {
        let mut p = HostProfiler::new();
        for phase in HostPhase::ALL {
            p.host_phase(phase, 7);
        }
        let v = p.to_value();
        for phase in HostPhase::ALL {
            let entry = v
                .get(phase.label())
                .unwrap_or_else(|| panic!("missing {}", phase.label()));
            assert_eq!(entry.get("nanos").and_then(Value::as_u64), Some(7));
        }
        assert_eq!(v.get("total_nanos").and_then(Value::as_u64), Some(42));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the contract under test
    fn only_the_host_phase_channel_is_enabled() {
        assert!(<HostProfiler as Probe>::WANTS_HOST_PHASES);
        assert!(!<HostProfiler as Probe>::WANTS_INST_EVENTS);
        assert!(!<HostProfiler as Probe>::WANTS_CACHE_EVENTS);
        assert!(!<HostProfiler as Probe>::WANTS_CYCLE_STATS);
        assert!(!<HostProfiler as Probe>::WANTS_OCC_STATS);
    }
}
