//! Top-down cycle accounting and timeline export for the CSMT simulator.
//!
//! This crate is the analysis layer over the zero-cost
//! [`csmt_trace::Probe`] event stream. Attach a [`MetricsProbe`] to any
//! run (it composes with other probes via the tuple impl without
//! perturbing their event streams) and [`finish`](MetricsProbe::finish)
//! it into a [`MetricsReport`]:
//!
//! * **[`LogHistogram`]** — deterministic log-bucketed histograms
//!   (p50/p90/p99) of load-to-use latency, MSHR residency,
//!   window/ready-queue occupancy, and fetch→commit lifetime, per thread
//!   and per cluster.
//! * **[`AttributionTree`]** — the §4.1 issue-slot accounting arranged as
//!   a top-down tree (frontend / backend / sync / rename-squash), every
//!   leaf an exact copy of one hazard accumulator so the tree reconciles
//!   bit-for-bit with the run's `SlotStats`.
//! * **[`PerfettoTrace`]** — a Chrome-trace-event document with
//!   per-hardware-context pipeline-occupancy tracks and IPC / in-flight
//!   miss / window-occupancy counter tracks; drag the file into
//!   [ui.perfetto.dev](https://ui.perfetto.dev).
//! * **[`HostProfiler`]** — a separate probe for *simulator* wall-clock
//!   per host phase (fetch/issue/commit/memory/…), behind the gated
//!   `WANTS_HOST_PHASES` channel.
//!
//! The `csmt-report` binary in `crates/bench` is the command-line front
//! end; `tests/metrics_reconcile.rs` pins the reconciliation and
//! golden-digest-neutrality guarantees. See DESIGN.md §12.

mod hist;
mod perfetto;
mod probe;
mod report;
mod selfprof;
mod topdown;

pub use hist::LogHistogram;
pub use perfetto::{validate_trace, PerfettoTrace};
pub use probe::MetricsProbe;
pub use report::MetricsReport;
pub use selfprof::HostProfiler;
pub use topdown::{AttributionNode, AttributionTree};
