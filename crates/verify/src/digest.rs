//! The canonical event-stream digest: FNV-1a over the `Debug` rendering
//! of every probe event, in order.
//!
//! This is THE digest construction behind every bit-for-bit claim the
//! repo makes — the golden Table-2 digests (`tests/golden_determinism.rs`),
//! the fast-forward and migration differential proptests, and the
//! metrics digest-neutrality test all absorb events in exactly this
//! format, so equal streams hash equal across all of them:
//!
//! ```text
//! "{tag}:{payload:?};"     tags: F R I W C Q M S (+G) and E for cycle_end
//! ```
//!
//! The construction is pinned by the golden digest constants; changing
//! the absorb format or the tag set is a behavior change that re-captures
//! every golden value. [`EventDigest`] observes the default channels
//! (exactly what the golden digests cover); [`SchedEventDigest`] also
//! opts into `WANTS_SCHED_EVENTS` and absorbs `migration` events with
//! tag `G`, so a non-deterministic placement decision changes the hash
//! even when the pipeline events happen to agree.

use csmt_trace::{
    CacheEvent, CycleStats, FetchEvent, MigrationEvent, Probe, StageEvent, SyncEvent,
};
use std::fmt::Write as _;

/// FNV-1a over bytes; stable across platforms and rustc versions.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest value.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes every probe event on the default channels, in order, via its
/// `Debug` rendering (all event payloads derive `Debug`, and the
/// rendering covers every field). The end-of-cycle snapshot is hashed
/// too, covering `SlotStats` accumulation cycle by cycle.
#[derive(Debug)]
pub struct EventDigest {
    fnv: Fnv64,
    buf: String,
    events: u64,
}

impl EventDigest {
    /// An empty digest.
    #[must_use]
    pub fn new() -> Self {
        EventDigest {
            fnv: Fnv64::new(),
            buf: String::with_capacity(256),
            events: 0,
        }
    }

    /// Absorb one `"{tag}:{payload};"` record.
    fn absorb(&mut self, tag: &str, payload: std::fmt::Arguments<'_>) {
        self.buf.clear();
        let _ = write!(self.buf, "{tag}:{payload};");
        self.fnv.update(self.buf.as_bytes());
        self.events += 1;
    }

    /// The stream digest so far.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.fnv.finish()
    }

    /// Number of events absorbed.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Default for EventDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for EventDigest {
    fn fetch(&mut self, e: FetchEvent) {
        self.absorb("F", format_args!("{e:?}"));
    }
    fn rename(&mut self, e: StageEvent) {
        self.absorb("R", format_args!("{e:?}"));
    }
    fn issue(&mut self, e: StageEvent) {
        self.absorb("I", format_args!("{e:?}"));
    }
    fn writeback(&mut self, e: StageEvent) {
        self.absorb("W", format_args!("{e:?}"));
    }
    fn commit(&mut self, e: StageEvent) {
        self.absorb("C", format_args!("{e:?}"));
    }
    fn squash(&mut self, e: StageEvent) {
        self.absorb("Q", format_args!("{e:?}"));
    }
    fn cache_access(&mut self, e: CacheEvent) {
        self.absorb("M", format_args!("{e:?}"));
    }
    fn sync_event(&mut self, e: SyncEvent) {
        self.absorb("S", format_args!("{e:?}"));
    }
    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        self.absorb("E", format_args!("{cycle}:{stats:?}"));
    }
}

/// [`EventDigest`] plus the scheduler's migration channel
/// (`WANTS_SCHED_EVENTS`, tag `G`). On a run with no migrations this
/// hashes identically to [`EventDigest`].
#[derive(Debug)]
pub struct SchedEventDigest {
    inner: EventDigest,
    migrations: u64,
}

impl SchedEventDigest {
    /// An empty digest.
    #[must_use]
    pub fn new() -> Self {
        SchedEventDigest {
            inner: EventDigest::new(),
            migrations: 0,
        }
    }

    /// The stream digest so far.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.inner.hash()
    }

    /// Number of events absorbed (migration events included).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.inner.events()
    }

    /// Number of migration events absorbed.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }
}

impl Default for SchedEventDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for SchedEventDigest {
    const WANTS_SCHED_EVENTS: bool = true;

    fn fetch(&mut self, e: FetchEvent) {
        self.inner.fetch(e);
    }
    fn rename(&mut self, e: StageEvent) {
        self.inner.rename(e);
    }
    fn issue(&mut self, e: StageEvent) {
        self.inner.issue(e);
    }
    fn writeback(&mut self, e: StageEvent) {
        self.inner.writeback(e);
    }
    fn commit(&mut self, e: StageEvent) {
        self.inner.commit(e);
    }
    fn squash(&mut self, e: StageEvent) {
        self.inner.squash(e);
    }
    fn cache_access(&mut self, e: CacheEvent) {
        self.inner.cache_access(e);
    }
    fn sync_event(&mut self, e: SyncEvent) {
        self.inner.sync_event(e);
    }
    fn migration(&mut self, e: MigrationEvent) {
        self.migrations += 1;
        self.inner.absorb("G", format_args!("{e:?}"));
    }
    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        self.inner.cycle_end(cycle, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a 64-bit test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "offset basis");
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv64::new();
        h2.update(b"foobar");
        assert_eq!(h2.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_absorbs_in_golden_format() {
        // The absorb format is pinned: "{tag}:{payload};" — byte-compare
        // against a manual FNV of the rendered record.
        let mut d = EventDigest::new();
        d.absorb("E", format_args!("7:None"));
        let mut h = Fnv64::new();
        h.update(b"E:7:None;");
        assert_eq!(d.hash(), h.finish());
        assert_eq!(d.events(), 1);
    }

    #[test]
    fn sched_digest_equals_plain_digest_without_migrations() {
        let mut a = EventDigest::new();
        let mut b = SchedEventDigest::new();
        for cycle in 0..4 {
            a.cycle_end(cycle, None);
            b.cycle_end(cycle, None);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(b.migrations(), 0);
    }
}
