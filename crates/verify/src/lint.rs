//! Static linting of workload instruction streams.
//!
//! The synthetic workload generators (`csmt-workloads`) hand the pipeline
//! plain [`DynInst`] sequences; nothing type-level stops a generator bug
//! from emitting a register outside the 32-entry files, a branch whose
//! target no static instruction owns, or a lock release without a
//! matching acquire — all of which would silently skew the timing model
//! rather than crash. These checks run the streams *without* the
//! simulator and report such defects, with severities chosen so that
//! legitimate workload idioms (live-in registers seeded before the
//! stream, barrier counts that differ because a thread exits early) stay
//! warnings while definite generator bugs are errors.

use csmt_isa::reg::{NUM_FP_REGS, NUM_INT_REGS};
use csmt_isa::{ArchReg, DynInst, InstStream, OpClass, SyncOp};
use csmt_workloads::{build_streams, AppParams, AppSpec};
use std::collections::HashMap;
use std::fmt;

/// How bad a [`LintIssue`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// Suspicious but legal — the simulator tolerates it.
    Warning,
    /// A malformed stream: the generator has a bug.
    Error,
}

/// The class of defect a [`LintIssue`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A register index at or beyond the 32-entry architectural file.
    RegOutOfRange,
    /// An instruction whose payload doesn't match its op class (memory
    /// op without an address, branch without an outcome, sync marker
    /// without an operation — or the payload present on the wrong op).
    MalformedPayload,
    /// A taken-branch target outside the stream's static PC span.
    BranchTargetOutOfRange,
    /// A lock released by a thread that doesn't hold it.
    LockUnderflow,
    /// A lock still held when the stream ends.
    LockHeldAtEnd,
    /// Instructions after the thread's `Exit` marker (never fetched).
    CodeAfterExit,
    /// A source register never written by the stream — a live-in (legal,
    /// the pipeline treats it as ready) or a dataflow bug.
    DanglingSource,
    /// Threads arrive at a barrier id different numbers of times. Legal
    /// (the runtime discounts exited threads) but worth eyes.
    BarrierImbalance,
}

/// One defect found in a workload stream.
#[derive(Debug, Clone)]
pub struct LintIssue {
    /// Error or warning.
    pub severity: LintSeverity,
    /// Defect class.
    pub kind: LintKind,
    /// Stream (thread) index the issue was found in, if per-thread.
    pub thread: Option<usize>,
    /// PC of the offending instruction, when one instruction is at fault.
    pub pc: Option<u64>,
    /// Human-readable specifics.
    pub message: String,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            LintSeverity::Warning => "warning",
            LintSeverity::Error => "error",
        };
        write!(f, "{sev}[{:?}]", self.kind)?;
        if let Some(t) = self.thread {
            write!(f, " thread {t}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " pc {pc:#x}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl LintIssue {
    /// True for [`LintSeverity::Error`] issues.
    pub fn is_error(&self) -> bool {
        self.severity == LintSeverity::Error
    }
}

fn reg_in_range(r: ArchReg) -> bool {
    match r {
        ArchReg::Int(i) => i < NUM_INT_REGS,
        ArchReg::Fp(i) => i < NUM_FP_REGS,
    }
}

/// Lint one thread's materialized instruction stream.
pub fn lint_stream(thread: usize, insts: &[DynInst]) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    let mut issue = |severity, kind, pc: Option<u64>, message: String| {
        issues.push(LintIssue {
            severity,
            kind,
            thread: Some(thread),
            pc,
            message,
        });
    };
    if insts.is_empty() {
        return issues;
    }
    let span_min = insts.iter().map(|i| i.pc).min().unwrap_or(0);
    let span_max = insts.iter().map(|i| i.pc).max().unwrap_or(0);
    // Registers the stream ever writes (any destination counts).
    let mut written = [false; ArchReg::COUNT];
    for i in insts {
        if let Some(d) = i.dest.filter(|d| reg_in_range(*d)) {
            written[d.flat_index()] = true;
        }
    }
    let mut dangling_reported = [false; ArchReg::COUNT];
    let mut lock_depth: HashMap<u32, u32> = HashMap::new();
    let mut exited_at: Option<u64> = None;
    for inst in insts {
        if let Some(pc) = exited_at {
            issue(
                LintSeverity::Error,
                LintKind::CodeAfterExit,
                Some(inst.pc),
                format!("instruction after the Exit at {pc:#x} can never be fetched"),
            );
            break; // one report per stream is enough
        }
        for r in inst.dest.iter().chain(inst.srcs.iter().flatten()) {
            if !reg_in_range(*r) {
                issue(
                    LintSeverity::Error,
                    LintKind::RegOutOfRange,
                    Some(inst.pc),
                    format!("register {r:?} outside the 32-entry file"),
                );
            }
        }
        for src in inst.srcs.iter().flatten() {
            if reg_in_range(*src)
                && !src.is_zero()
                && !written[src.flat_index()]
                && !dangling_reported[src.flat_index()]
            {
                dangling_reported[src.flat_index()] = true;
                issue(
                    LintSeverity::Warning,
                    LintKind::DanglingSource,
                    Some(inst.pc),
                    format!("source {src:?} is never written by this stream (live-in?)"),
                );
            }
        }
        if inst.op.is_mem() != inst.mem.is_some() {
            issue(
                LintSeverity::Error,
                LintKind::MalformedPayload,
                Some(inst.pc),
                format!("{:?} and memory payload disagree", inst.op),
            );
        } else if let Some(m) = inst.mem {
            if !matches!(m.size, 4 | 8) {
                issue(
                    LintSeverity::Warning,
                    LintKind::MalformedPayload,
                    Some(inst.pc),
                    format!("unusual access size {} (workloads use 4 or 8)", m.size),
                );
            }
        }
        if inst.op.is_branch() != inst.branch.is_some() {
            issue(
                LintSeverity::Error,
                LintKind::MalformedPayload,
                Some(inst.pc),
                format!("{:?} and branch payload disagree", inst.op),
            );
        } else if let Some(b) = inst.branch {
            if b.target < span_min || b.target > span_max {
                issue(
                    LintSeverity::Error,
                    LintKind::BranchTargetOutOfRange,
                    Some(inst.pc),
                    format!(
                        "target {:#x} outside the stream's static span {span_min:#x}..={span_max:#x}",
                        b.target
                    ),
                );
            }
        }
        if (inst.op == OpClass::Sync) != inst.sync.is_some() {
            issue(
                LintSeverity::Error,
                LintKind::MalformedPayload,
                Some(inst.pc),
                format!("{:?} and sync payload disagree", inst.op),
            );
        }
        match inst.sync {
            Some(SyncOp::LockAcquire(id)) => {
                *lock_depth.entry(id).or_insert(0) += 1;
            }
            Some(SyncOp::LockRelease(id)) => {
                let depth = lock_depth.entry(id).or_insert(0);
                if *depth == 0 {
                    issue(
                        LintSeverity::Error,
                        LintKind::LockUnderflow,
                        Some(inst.pc),
                        format!("release of lock {id} the thread does not hold"),
                    );
                } else {
                    *depth -= 1;
                }
            }
            Some(SyncOp::Exit) => exited_at = Some(inst.pc),
            Some(SyncOp::Barrier(_)) | None => {}
        }
    }
    let mut held: Vec<u32> = lock_depth
        .iter()
        .filter(|(_, &d)| d > 0)
        .map(|(&id, _)| id)
        .collect();
    held.sort_unstable();
    for id in held {
        issue(
            LintSeverity::Warning,
            LintKind::LockHeldAtEnd,
            None,
            format!("lock {id} still held when the stream ends"),
        );
    }
    issues
}

/// Lint a group of threads together: every per-stream check, plus
/// cross-thread barrier balance (each barrier id should be reached the
/// same number of times by every thread that reaches it at all).
pub fn lint_threads(streams: &[Vec<DynInst>]) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    for (tid, insts) in streams.iter().enumerate() {
        issues.extend(lint_stream(tid, insts));
    }
    // barrier id → per-thread arrival counts.
    let mut arrivals: HashMap<u32, Vec<u64>> = HashMap::new();
    for (tid, insts) in streams.iter().enumerate() {
        for inst in insts {
            if let Some(SyncOp::Barrier(id)) = inst.sync {
                let counts = arrivals.entry(id).or_insert_with(|| vec![0; streams.len()]);
                counts[tid] += 1;
            }
        }
    }
    let mut ids: Vec<u32> = arrivals.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let counts = &arrivals[&id];
        let participants: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
        if participants.windows(2).any(|w| w[0] != w[1]) {
            issues.push(LintIssue {
                severity: LintSeverity::Warning,
                kind: LintKind::BarrierImbalance,
                thread: None,
                pc: None,
                message: format!("barrier {id} arrival counts differ across threads: {counts:?}"),
            });
        }
    }
    issues
}

/// Drain an [`InstStream`] into a vector, stopping at `cap` instructions.
/// Returns the instructions and whether the cap truncated the stream.
pub fn materialize(mut stream: Box<dyn InstStream + Send>, cap: usize) -> (Vec<DynInst>, bool) {
    let mut v = Vec::new();
    while v.len() < cap {
        match stream.next_inst() {
            Some(i) => v.push(i),
            None => return (v, false),
        }
    }
    (v, true)
}

/// Build and lint every thread stream of one application at the given
/// footprint. `cap` bounds instructions materialized per thread.
pub fn lint_app(
    app: &AppSpec,
    n_threads: usize,
    scale: f64,
    seed: u64,
    cap: usize,
) -> Vec<LintIssue> {
    let params = AppParams::new(n_threads, 1, scale, seed);
    let streams: Vec<Vec<DynInst>> = build_streams(app, &params)
        .into_iter()
        .map(|s| materialize(s, cap).0)
        .collect();
    lint_threads(&streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(pc: u64, dest: u8, src: u8) -> DynInst {
        DynInst::alu(
            pc,
            OpClass::IntAlu,
            Some(ArchReg::Int(dest)),
            [Some(ArchReg::Int(src)), None],
        )
    }

    #[test]
    fn clean_block_lints_clean() {
        let insts = vec![alu(0x100, 1, 0), alu(0x104, 2, 1)];
        assert!(lint_stream(0, &insts).is_empty());
    }

    #[test]
    fn out_of_range_register_is_an_error() {
        let insts = vec![alu(0x100, 40, 1)];
        let issues = lint_stream(0, &insts);
        assert!(issues
            .iter()
            .any(|i| i.kind == LintKind::RegOutOfRange && i.is_error()));
    }

    #[test]
    fn dangling_source_is_a_warning_reported_once() {
        let insts = vec![alu(0x100, 1, 7), alu(0x104, 2, 7)];
        let issues = lint_stream(0, &insts);
        let dangling: Vec<_> = issues
            .iter()
            .filter(|i| i.kind == LintKind::DanglingSource)
            .collect();
        assert_eq!(dangling.len(), 1);
        assert!(!dangling[0].is_error());
    }

    #[test]
    fn branch_target_outside_span_is_an_error() {
        let b = DynInst::branch(0x104, true, 0x9000, [None, None]);
        let insts = vec![alu(0x100, 1, 0), b];
        let issues = lint_stream(0, &insts);
        assert!(issues
            .iter()
            .any(|i| i.kind == LintKind::BranchTargetOutOfRange && i.is_error()));
    }

    #[test]
    fn lock_release_without_acquire_is_an_error() {
        let rel = DynInst::sync(0x100, SyncOp::LockRelease(3));
        let issues = lint_stream(0, &[rel]);
        assert!(issues
            .iter()
            .any(|i| i.kind == LintKind::LockUnderflow && i.is_error()));
    }

    #[test]
    fn code_after_exit_is_an_error() {
        let insts = vec![DynInst::sync(0x100, SyncOp::Exit), alu(0x104, 1, 0)];
        let issues = lint_stream(0, &insts);
        assert!(issues
            .iter()
            .any(|i| i.kind == LintKind::CodeAfterExit && i.is_error()));
    }

    #[test]
    fn unbalanced_barriers_are_flagged_across_threads() {
        let b = |pc| DynInst::sync(pc, SyncOp::Barrier(1));
        let t0 = vec![b(0x100), b(0x104)];
        let t1 = vec![b(0x100)];
        let issues = lint_threads(&[t0, t1]);
        assert!(issues.iter().any(|i| i.kind == LintKind::BarrierImbalance));
    }
}
