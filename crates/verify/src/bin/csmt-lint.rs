//! csmt-lint — static analysis gate for configurations and workloads.
//!
//! Validates all seven Table 2 chip configurations (plus the SMT8 alias)
//! with `ChipConfig::validate`, checks the scheduler-policy × architecture
//! matrix (dynamic policies must be rejected on fixed-assignment archs, a
//! zero rebalance quantum must be rejected everywhere), materializes and
//! lints every application's instruction streams (register ranges,
//! dataflow live-ins, branch-target spans, sync balance), and runs the
//! `csmt-audit` determinism/hot-path source scan, folding its summary
//! into the final line.
//!
//! ```text
//! cargo run --release --bin csmt-lint [scale] [n_threads]
//! ```
//!
//! `scale` (default 0.02) sets the workload footprint, `n_threads`
//! (default 8) the thread count streams are built for. Exits non-zero if
//! any error-severity issue is found; warnings are informational.

use csmt_core::sched::{by_name, HazardPairing, POLICY_NAMES};
use csmt_core::{ArchKind, Machine};
use csmt_mem::MemConfig;
use csmt_verify::lint_app;
use csmt_workloads::all_apps;

/// Seed used by the figure binaries and golden tests.
const SEED: u64 = 0xC5_317;
/// Per-thread materialization bound, far above any `scale ≤ 1` stream.
const CAP: usize = 5_000_000;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map_or(0.02, |a| a.parse().expect("scale must be a float"));
    let n_threads: usize = args
        .next()
        .map_or(8, |a| a.parse().expect("n_threads must be an integer"));

    let mut errors = 0usize;
    let mut warnings = 0usize;

    println!("== chip configurations (Table 2) ==");
    for kind in ArchKind::ALL {
        match kind.chip().validate() {
            Ok(()) => println!("  {:<5} ok", kind.name()),
            Err(errs) => {
                for e in &errs {
                    println!("  {:<5} error: {e}", kind.name());
                }
                errors += errs.len();
            }
        }
    }

    println!("== scheduler policies ==");
    for kind in ArchKind::ALL {
        let fixed = kind.chip().cluster.hw_threads == 1;
        for name in POLICY_NAMES {
            let sched = by_name(name).expect("POLICY_NAMES entries resolve");
            let dynamic = sched.is_dynamic();
            let mut m = Machine::new(kind.chip(), 1, MemConfig::table3(), SEED);
            let accepted = m.set_scheduler(sched).is_ok();
            // Dynamic policies need migratable contexts: fixed-assignment
            // archs must reject them; everything else must accept.
            let want = !(fixed && dynamic);
            if accepted == want {
                println!(
                    "  {:<5} {name:<14} {}",
                    kind.name(),
                    if accepted { "ok" } else { "rejected (ok)" }
                );
            } else {
                println!(
                    "  {:<5} {name:<14} error: {} a {} policy",
                    kind.name(),
                    if accepted { "accepted" } else { "rejected" },
                    if dynamic { "dynamic" } else { "static" },
                );
                errors += 1;
            }
        }
        // A rebalance quantum of zero would re-run the policy every cycle
        // forever; the config layer must reject it on every architecture.
        let mut m = Machine::new(kind.chip(), 1, MemConfig::table3(), SEED);
        if m.set_scheduler(Box::new(HazardPairing::with_quantum(0)))
            .is_ok()
        {
            println!(
                "  {:<5} error: zero rebalance quantum accepted",
                kind.name()
            );
            errors += 1;
        }
    }

    println!("== workload streams (scale {scale}, {n_threads} threads, seed {SEED:#x}) ==");
    for app in all_apps() {
        let issues = lint_app(&app, n_threads, scale, SEED, CAP);
        let (errs, warns): (Vec<_>, Vec<_>) = issues.iter().partition(|i| i.is_error());
        println!(
            "  {:<8} {} error(s), {} warning(s)",
            app.name,
            errs.len(),
            warns.len()
        );
        for i in issues.iter().take(20) {
            println!("    {i}");
        }
        if issues.len() > 20 {
            println!("    … {} more", issues.len() - 20);
        }
        errors += errs.len();
        warnings += warns.len();
    }

    println!("== source audit (csmt-audit) ==");
    match csmt_audit::audit_root(&csmt_audit::default_root()) {
        Ok(report) => {
            for f in &report.findings {
                println!("  {f}");
            }
            for s in &report.stale {
                println!("  stale: {s}");
            }
            println!("  {}", report.summary());
            errors += report.errors() + report.stale.len();
            warnings += report.warnings();
        }
        Err(e) => {
            println!("  error: {e}");
            errors += 1;
        }
    }

    println!("csmt-lint: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        std::process::exit(1);
    }
}
