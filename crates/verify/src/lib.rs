//! # csmt-verify — invariant checking and static analysis for the simulator
//!
//! The paper's claims rest on resource partitioning being enforced exactly
//! (Table 2 budgets, no cross-cluster bypass) and on the §4.1 wasted-slot
//! accounting being conservative. This crate gives both teeth:
//!
//! * [`InvariantProbe`] — a [`csmt_trace::Probe`] that validates
//!   microarchitectural invariants cycle by cycle on the live event
//!   stream: per-thread in-order commit, window/rename occupancy against
//!   the Table 2 budgets, rename-register conservation, per-cycle issue ≤
//!   cluster width, `fetched == committed + squashed` at drain, §4.1
//!   hazard-slot conservation, and cluster confinement (no wakeup crosses
//!   a cluster boundary). Fail-fast or collect-all, with structured
//!   [`Violation`] reports.
//! * `ChipConfig::validate` (in `csmt-core`) — the static counterpart:
//!   budgets partition exactly per Table 2, FA thread assignment is total
//!   and disjoint, SMT/FA width sums equal 8.
//! * [`lint`] — stream-level static analysis of the synthetic workloads
//!   (dangling sources, out-of-span branch targets, unbalanced sync),
//!   driven by the `csmt-lint` binary.
//! * [`digest`] — the canonical FNV-1a event-stream digest behind every
//!   bit-for-bit claim: [`EventDigest`] (what the golden digests pin)
//!   and [`SchedEventDigest`] (plus the migration channel).
//!
//! The checker rides the zero-cost probe layer: a `NullProbe` build
//! contains none of it, and the golden-determinism digests are unchanged
//! by its existence. Attaching it costs an event-stream replay
//! (hash-map updates per instruction), fine for tests and spot checks:
//!
//! ```
//! use csmt_core::ArchKind;
//! use csmt_mem::MemConfig;
//! use csmt_verify::InvariantProbe;
//! use csmt_workloads::{by_name, simulate_probed};
//!
//! let app = by_name("mgrid").expect("paper app");
//! let mut probe = InvariantProbe::new(&ArchKind::Smt2.chip(), 1);
//! simulate_probed(&app, ArchKind::Smt2.chip(), 1, 0.02, 42, MemConfig::table3(), &mut probe);
//! let summary = probe.finish().expect("no invariant violations");
//! assert!(summary.committed > 0);
//! ```

pub mod digest;
pub mod invariants;
pub mod lint;

pub use digest::{EventDigest, Fnv64, SchedEventDigest};
pub use invariants::{InvariantProbe, Mode, VerifySummary, Violation, ViolationKind};
pub use lint::{
    lint_app, lint_stream, lint_threads, materialize, LintIssue, LintKind, LintSeverity,
};
