//! The [`InvariantProbe`]: a [`Probe`] that re-derives the pipeline's
//! structural state from the event stream and checks, cycle by cycle, that
//! the machine never leaves the envelope the paper's Table 2 budgets and
//! §3.1/§4.1 semantics define.
//!
//! Checked invariants (see DESIGN.md §10 for the paper citations):
//!
//! * **Lifecycle order** — every `(cluster, uid)` moves strictly through
//!   fetch → rename → issue → writeback → commit (or is squashed after
//!   rename), with no stage repeated, skipped, or applied to a retired or
//!   never-fetched instruction.
//! * **In-order commit** — per `(cluster, hardware thread)`, committed
//!   uids are strictly increasing (§3.1: "instructions are committed on a
//!   per-thread basis", in order).
//! * **Window occupancy** — in-flight instructions per cluster never
//!   exceed the Table 2 IQ/ROB entry budget.
//! * **Issue width** — per cluster per cycle, issue events never exceed
//!   the cluster's issue width.
//! * **Rename conservation** — per cluster and register file,
//!   `free + held == pool` at every end-of-cycle snapshot
//!   ([`RenamePoolEvent`], emitted when `WANTS_POOL_STATS`).
//! * **Store-buffer bound** — committed stores still in flight per node
//!   never exceed `clusters/chip × store_buffer`.
//! * **Slot conservation** — `useful + Σ wasted == slots` in every
//!   [`CycleStats`] snapshot (§4.1 accounting), and the cumulative
//!   counters advance monotonically with the right per-cycle slot delta.
//! * **Drain** — at end of run, `fetched == committed + squashed` and no
//!   instruction is left in flight.
//! * **Cluster confinement** — no event references a cluster the machine
//!   does not have, or an instruction its cluster never fetched (the
//!   observable signature of a wakeup crossing a cluster boundary).
//! * **Confinement between migrations** — once migration events identify
//!   context ownership (the probe latches *sched-aware* on the first
//!   [`MigrationEvent`]), a thread departs only from a context it owns and
//!   only after a full drain, arrives only at a free context and only
//!   after a matching depart, and no context fetches without an owner.

use csmt_core::ChipConfig;
use csmt_trace::{
    CacheEvent, CycleStats, FetchEvent, MigrationEvent, MigrationEventKind, Probe, RenamePoolEvent,
    StageEvent,
};
use std::collections::HashMap;
use std::fmt;

/// What the checker does when an invariant breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Record every violation (up to a cap) and keep simulating; the
    /// caller inspects [`InvariantProbe::finish`].
    #[default]
    CollectAll,
    /// Panic on the first violation with its full report — the simulation
    /// stops at the offending cycle, which is the cheapest way to land a
    /// debugger there.
    FailFast,
}

/// The class of invariant a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A cluster held more in-flight instructions than its Table 2
    /// IQ/ROB budget.
    WindowOverflow,
    /// A rename-pool snapshot where `free + held != pool`.
    RenameConservation,
    /// More committed-but-in-flight stores on a node than its clusters'
    /// store buffers can hold.
    StoreBufferOverflow,
    /// More issue events in one cluster-cycle than the issue width.
    IssueWidthExceeded,
    /// A hardware thread committed a lower uid after a higher one.
    OutOfOrderCommit,
    /// A stage event out of fetch → rename → issue → writeback →
    /// commit/squash order (skipped, repeated, or after retirement).
    LifecycleOrder,
    /// An event referencing a cluster/node outside the machine, or an
    /// instruction its cluster never fetched — a wakeup or event that
    /// crossed a cluster boundary.
    CrossCluster,
    /// A [`CycleStats`] snapshot where `useful + Σ wasted != slots`.
    SlotConservation,
    /// Cumulative [`CycleStats`] counters that regressed, skipped, or
    /// disagree with the observed event stream.
    StatsRegression,
    /// An instruction fetched but neither committed nor squashed by the
    /// end of the run.
    LeakedInstruction,
    /// A thread left (or appeared at) a context in violation of the
    /// drain-based migration protocol: departing with instructions still
    /// in flight, arriving without a matching depart, or still in transit
    /// when the run drained.
    MigrationWithoutDrain,
    /// Context ownership broke: two threads on one context, a depart by a
    /// non-owner, or activity on a context no thread owns.
    PlacementConflict,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One invariant violation, with enough context to localize it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Cycle of the offending event (or last cycle, for drain checks).
    pub cycle: u64,
    /// Machine-global cluster index, when the event carries one.
    pub cluster: Option<u32>,
    /// Hardware context within the cluster, when known.
    pub thread: Option<u32>,
    /// Cluster-local instruction uid, when the event carries one.
    pub uid: Option<u64>,
    /// Human-readable specifics (observed vs. budget, stage seen, …).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {}", self.kind, self.cycle)?;
        if let Some(c) = self.cluster {
            write!(f, " cluster {c}")?;
        }
        if let Some(t) = self.thread {
            write!(f, " thread {t}")?;
        }
        if let Some(u) = self.uid {
            write!(f, " uid {u}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Totals reported by [`InvariantProbe::finish`] on a clean run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifySummary {
    /// Machine cycles observed (cycle_end calls).
    pub cycles: u64,
    /// Instructions fetched, summed over clusters (wrong path included).
    pub fetched: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions squashed.
    pub squashed: u64,
    /// Probe events processed.
    pub events: u64,
}

/// Where an in-flight instruction is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Fetched,
    Renamed,
    Issued,
    Done,
}

impl Stage {
    fn label(self) -> &'static str {
        match self {
            Stage::Fetched => "fetched",
            Stage::Renamed => "renamed",
            Stage::Issued => "issued",
            Stage::Done => "written back",
        }
    }
}

/// Mirror of one cluster's architectural occupancy, rebuilt from events.
struct ClusterState {
    window_cap: usize,
    issue_width: usize,
    rename_int: u64,
    rename_fp: u64,
    hw_threads: u32,
    /// uid → (stage, hardware thread).
    inflight: HashMap<u64, (Stage, u32)>,
    /// Highest uid fetched so far (uids are dense and start at 1).
    last_fetch_uid: u64,
    /// Last committed uid per hardware thread (0 = none yet).
    last_commit: Vec<u64>,
    /// Cycle the issue counter below belongs to.
    issue_cycle: u64,
    issued_this_cycle: usize,
    fetched: u64,
    committed: u64,
    squashed: u64,
}

/// Mirror of one node's store buffer: completed-store drain times.
struct NodeState {
    cap: usize,
    pending: Vec<u64>,
}

/// The invariant checker. Attach it (alone or in a probe tuple) to any
/// `*_probed` entry point, run the simulation, then call
/// [`finish`](InvariantProbe::finish).
pub struct InvariantProbe {
    mode: Mode,
    clusters: Vec<ClusterState>,
    nodes: Vec<NodeState>,
    /// Issue slots the whole machine offers per cycle.
    machine_slots: u64,
    thread_capacity: u32,
    prev_stats: Option<CycleStats>,
    commit_events: u64,
    cycles: u64,
    last_cycle: u64,
    events: u64,
    violations: Vec<Violation>,
    /// Violations beyond the cap, counted but not stored.
    dropped: u64,
    /// Latched on the first migration event: from then on context
    /// ownership is tracked and fetch on an unowned context is flagged.
    sched_aware: bool,
    /// (machine-global cluster, context) → owning software thread.
    slot_owner: HashMap<(u32, u32), u32>,
    /// Software threads currently between contexts (departed, not yet
    /// arrived).
    in_transit: Vec<u32>,
}

/// Cap on stored violations in [`Mode::CollectAll`]; a genuinely broken
/// pipeline violates invariants every cycle, and the first few are the
/// informative ones.
const MAX_STORED: usize = 1024;

impl InvariantProbe {
    /// A checker for `n_chips` chips of configuration `chip`, in
    /// [`Mode::CollectAll`].
    pub fn new(chip: &ChipConfig, n_chips: usize) -> Self {
        let c = &chip.cluster;
        let clusters = (0..chip.clusters * n_chips)
            .map(|_| ClusterState {
                window_cap: c.window_entries,
                issue_width: c.issue_width,
                rename_int: c.rename_int as u64,
                rename_fp: c.rename_fp as u64,
                hw_threads: c.hw_threads as u32,
                inflight: HashMap::new(),
                last_fetch_uid: 0,
                last_commit: vec![0; c.hw_threads],
                issue_cycle: u64::MAX,
                issued_this_cycle: 0,
                fetched: 0,
                committed: 0,
                squashed: 0,
            })
            .collect();
        let nodes = (0..n_chips)
            .map(|_| NodeState {
                cap: chip.clusters * c.store_buffer,
                pending: Vec::new(),
            })
            .collect();
        InvariantProbe {
            mode: Mode::CollectAll,
            clusters,
            nodes,
            machine_slots: (chip.chip_issue_width() * n_chips) as u64,
            thread_capacity: (chip.threads_per_chip() * n_chips) as u32,
            prev_stats: None,
            commit_events: 0,
            cycles: 0,
            last_cycle: 0,
            events: 0,
            violations: Vec::new(),
            dropped: 0,
            sched_aware: false,
            slot_owner: HashMap::new(),
            in_transit: Vec::new(),
        }
    }

    /// The same checker in [`Mode::FailFast`]: panic at the first
    /// violation instead of collecting.
    pub fn fail_fast(mut self) -> Self {
        self.mode = Mode::FailFast;
        self
    }

    /// Violations recorded so far (empty on a clean run).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True while no invariant has broken.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Run the end-of-run drain checks and consume the checker: `Ok` with
    /// run totals when every invariant held, `Err` with the collected
    /// violations otherwise.
    pub fn finish(mut self) -> Result<VerifySummary, Vec<Violation>> {
        let last = self.last_cycle;
        if !self.in_transit.is_empty() {
            let threads = std::mem::take(&mut self.in_transit);
            self.violations.push(Violation {
                kind: ViolationKind::MigrationWithoutDrain,
                cycle: last,
                cluster: None,
                thread: threads.first().copied(),
                uid: None,
                detail: format!("thread(s) {threads:?} still in transit at drain"),
            });
        }
        for (i, c) in self.clusters.iter().enumerate() {
            if !c.inflight.is_empty() {
                let mut uids: Vec<u64> = c.inflight.keys().copied().collect();
                uids.sort_unstable();
                uids.truncate(4);
                let v = Violation {
                    kind: ViolationKind::LeakedInstruction,
                    cycle: last,
                    cluster: Some(i as u32),
                    thread: None,
                    uid: uids.first().copied(),
                    detail: format!(
                        "{} instruction(s) still in flight at drain (first uids {uids:?})",
                        c.inflight.len()
                    ),
                };
                self.violations.push(v);
            }
            if c.fetched != c.committed + c.squashed {
                let v = Violation {
                    kind: ViolationKind::LeakedInstruction,
                    cycle: last,
                    cluster: Some(i as u32),
                    thread: None,
                    uid: None,
                    detail: format!(
                        "fetched {} != committed {} + squashed {}",
                        c.fetched, c.committed, c.squashed
                    ),
                };
                self.violations.push(v);
            }
        }
        if self.violations.is_empty() && self.dropped == 0 {
            Ok(VerifySummary {
                cycles: self.cycles,
                fetched: self.clusters.iter().map(|c| c.fetched).sum(),
                committed: self.clusters.iter().map(|c| c.committed).sum(),
                squashed: self.clusters.iter().map(|c| c.squashed).sum(),
                events: self.events,
            })
        } else {
            Err(self.violations)
        }
    }

    fn record(&mut self, v: Violation) {
        match self.mode {
            Mode::FailFast => panic!("invariant violation: {v}"),
            Mode::CollectAll => {
                if self.violations.len() < MAX_STORED {
                    self.violations.push(v);
                } else {
                    self.dropped += 1;
                }
            }
        }
    }

    /// Bounds-check a cluster index; records [`ViolationKind::CrossCluster`]
    /// and returns `None` when it points outside the machine.
    fn cluster_checked(&mut self, cycle: u64, cluster: u32, uid: Option<u64>) -> Option<usize> {
        if (cluster as usize) < self.clusters.len() {
            Some(cluster as usize)
        } else {
            let n = self.clusters.len();
            self.record(Violation {
                kind: ViolationKind::CrossCluster,
                cycle,
                cluster: Some(cluster),
                thread: None,
                uid,
                detail: format!("event references cluster {cluster}, machine has {n}"),
            });
            None
        }
    }

    /// Look up an in-flight instruction for a stage event, flagging
    /// orphans: a uid above the cluster's fetch horizon was never fetched
    /// *here* (the signature of a cross-cluster wakeup); one at or below
    /// it has already retired.
    fn stage_state(&mut self, stage: &'static str, e: StageEvent) -> Option<(usize, Stage, u32)> {
        let ci = self.cluster_checked(e.cycle, e.cluster, Some(e.uid))?;
        let c = &self.clusters[ci];
        if let Some(&(stage_now, thread)) = c.inflight.get(&e.uid) {
            return Some((ci, stage_now, thread));
        }
        let v = if e.uid > c.last_fetch_uid || e.uid == 0 {
            Violation {
                kind: ViolationKind::CrossCluster,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: None,
                uid: Some(e.uid),
                detail: format!(
                    "{stage} of an instruction this cluster never fetched \
                     (fetch horizon {}) — wakeup across a cluster boundary?",
                    c.last_fetch_uid
                ),
            }
        } else {
            Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: None,
                uid: Some(e.uid),
                detail: format!("{stage} of an already-retired instruction"),
            }
        };
        self.record(v);
        None
    }
}

impl Probe for InvariantProbe {
    const WANTS_INST_EVENTS: bool = true;
    const WANTS_CACHE_EVENTS: bool = true;
    const WANTS_CYCLE_STATS: bool = true;
    const WANTS_POOL_STATS: bool = true;
    const WANTS_SCHED_EVENTS: bool = true;

    fn fetch(&mut self, e: FetchEvent) {
        self.events += 1;
        let Some(ci) = self.cluster_checked(e.cycle, e.cluster, Some(e.uid)) else {
            return;
        };
        let hw = self.clusters[ci].hw_threads;
        if e.thread >= hw {
            self.record(Violation {
                kind: ViolationKind::CrossCluster,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(e.thread),
                uid: Some(e.uid),
                detail: format!("fetch for context {} of {hw}", e.thread),
            });
            return;
        }
        if self.sched_aware && !self.slot_owner.contains_key(&(e.cluster, e.thread)) {
            self.record(Violation {
                kind: ViolationKind::PlacementConflict,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(e.thread),
                uid: Some(e.uid),
                detail: "fetch on a context no software thread owns".to_string(),
            });
        }
        let last = self.clusters[ci].last_fetch_uid;
        if e.uid <= last {
            self.record(Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(e.thread),
                uid: Some(e.uid),
                detail: format!("fetch uid not strictly increasing (last was {last})"),
            });
            return;
        }
        let c = &mut self.clusters[ci];
        c.last_fetch_uid = e.uid;
        c.fetched += 1;
        c.inflight.insert(e.uid, (Stage::Fetched, e.thread));
        let (occ, cap) = (c.inflight.len(), c.window_cap);
        if occ > cap {
            self.record(Violation {
                kind: ViolationKind::WindowOverflow,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(e.thread),
                uid: Some(e.uid),
                detail: format!("window occupancy {occ} exceeds Table 2 budget {cap}"),
            });
        }
    }

    fn rename(&mut self, e: StageEvent) {
        self.events += 1;
        let Some((ci, stage, thread)) = self.stage_state("rename", e) else {
            return;
        };
        if stage == Stage::Fetched {
            self.clusters[ci]
                .inflight
                .insert(e.uid, (Stage::Renamed, thread));
        } else {
            self.record(Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(thread),
                uid: Some(e.uid),
                detail: format!("rename of an instruction already {}", stage.label()),
            });
        }
    }

    fn issue(&mut self, e: StageEvent) {
        self.events += 1;
        let Some((ci, stage, thread)) = self.stage_state("issue", e) else {
            return;
        };
        let c = &mut self.clusters[ci];
        if e.cycle != c.issue_cycle {
            c.issue_cycle = e.cycle;
            c.issued_this_cycle = 0;
        }
        c.issued_this_cycle += 1;
        let (n, w) = (c.issued_this_cycle, c.issue_width);
        if n > w {
            self.record(Violation {
                kind: ViolationKind::IssueWidthExceeded,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(thread),
                uid: Some(e.uid),
                detail: format!("{n} issues in one cycle on a {w}-issue cluster"),
            });
        }
        if stage == Stage::Renamed {
            self.clusters[ci]
                .inflight
                .insert(e.uid, (Stage::Issued, thread));
        } else {
            self.record(Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(thread),
                uid: Some(e.uid),
                detail: format!("issue of an instruction already {}", stage.label()),
            });
        }
    }

    fn writeback(&mut self, e: StageEvent) {
        self.events += 1;
        let Some((ci, stage, thread)) = self.stage_state("writeback", e) else {
            return;
        };
        if stage == Stage::Issued {
            self.clusters[ci]
                .inflight
                .insert(e.uid, (Stage::Done, thread));
        } else {
            self.record(Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(thread),
                uid: Some(e.uid),
                detail: format!("writeback of an instruction {}", stage.label()),
            });
        }
    }

    fn commit(&mut self, e: StageEvent) {
        self.events += 1;
        self.commit_events += 1;
        let Some((ci, stage, thread)) = self.stage_state("commit", e) else {
            return;
        };
        if stage != Stage::Done {
            self.record(Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(thread),
                uid: Some(e.uid),
                detail: format!("commit of an instruction only {}", stage.label()),
            });
        }
        let c = &mut self.clusters[ci];
        c.inflight.remove(&e.uid);
        c.committed += 1;
        let last = c.last_commit[thread as usize];
        if e.uid <= last {
            self.record(Violation {
                kind: ViolationKind::OutOfOrderCommit,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(thread),
                uid: Some(e.uid),
                detail: format!("commit after uid {last} of the same thread"),
            });
        } else {
            self.clusters[ci].last_commit[thread as usize] = e.uid;
        }
    }

    fn squash(&mut self, e: StageEvent) {
        self.events += 1;
        let Some((ci, _stage, _thread)) = self.stage_state("squash", e) else {
            return;
        };
        let c = &mut self.clusters[ci];
        c.inflight.remove(&e.uid);
        c.squashed += 1;
    }

    fn migration(&mut self, e: MigrationEvent) {
        self.events += 1;
        self.sched_aware = true;
        let Some(ci) = self.cluster_checked(e.cycle, e.cluster, None) else {
            return;
        };
        let hw = self.clusters[ci].hw_threads;
        if e.ctx >= hw || e.thread >= self.thread_capacity {
            let cap = self.thread_capacity;
            self.record(Violation {
                kind: ViolationKind::CrossCluster,
                cycle: e.cycle,
                cluster: Some(e.cluster),
                thread: Some(e.thread),
                uid: None,
                detail: format!(
                    "migration event for context {} of {hw} / thread {} of {cap}",
                    e.ctx, e.thread
                ),
            });
            return;
        }
        let key = (e.cluster, e.ctx);
        match e.kind {
            MigrationEventKind::Attach => {
                if let Some(&owner) = self.slot_owner.get(&key) {
                    self.record(Violation {
                        kind: ViolationKind::PlacementConflict,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: None,
                        detail: format!("attach to a context already owned by thread {owner}"),
                    });
                }
                self.slot_owner.insert(key, e.thread);
            }
            MigrationEventKind::Depart => {
                match self.slot_owner.get(&key) {
                    Some(&owner) if owner == e.thread => {
                        self.slot_owner.remove(&key);
                    }
                    Some(&owner) => self.record(Violation {
                        kind: ViolationKind::PlacementConflict,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: None,
                        detail: format!("depart from a context owned by thread {owner}"),
                    }),
                    None => self.record(Violation {
                        kind: ViolationKind::PlacementConflict,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: None,
                        detail: "depart from a context no thread owns".to_string(),
                    }),
                }
                let mut inflight: Vec<u64> = self.clusters[ci]
                    .inflight
                    .iter()
                    .filter(|&(_, &(_, t))| t == e.ctx)
                    .map(|(&uid, _)| uid)
                    .collect();
                if !inflight.is_empty() {
                    inflight.sort_unstable();
                    inflight.truncate(4);
                    self.record(Violation {
                        kind: ViolationKind::MigrationWithoutDrain,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: inflight.first().copied(),
                        detail: format!(
                            "departed with instruction(s) still in flight (first uids {inflight:?})"
                        ),
                    });
                }
                if self.in_transit.contains(&e.thread) {
                    self.record(Violation {
                        kind: ViolationKind::MigrationWithoutDrain,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: None,
                        detail: "depart of a thread already in transit".to_string(),
                    });
                } else {
                    self.in_transit.push(e.thread);
                }
            }
            MigrationEventKind::Arrive => {
                if self.in_transit.contains(&e.thread) {
                    self.in_transit.retain(|&t| t != e.thread);
                } else {
                    self.record(Violation {
                        kind: ViolationKind::MigrationWithoutDrain,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: None,
                        detail: "arrival without a matching depart (teleport)".to_string(),
                    });
                }
                if let Some(&owner) = self.slot_owner.get(&key) {
                    self.record(Violation {
                        kind: ViolationKind::PlacementConflict,
                        cycle: e.cycle,
                        cluster: Some(e.cluster),
                        thread: Some(e.thread),
                        uid: None,
                        detail: format!("arrival at a context owned by thread {owner}"),
                    });
                }
                self.slot_owner.insert(key, e.thread);
            }
        }
    }

    fn cache_access(&mut self, e: CacheEvent) {
        self.events += 1;
        if (e.node as usize) >= self.nodes.len() {
            let n = self.nodes.len();
            self.record(Violation {
                kind: ViolationKind::CrossCluster,
                cycle: e.cycle,
                cluster: None,
                thread: None,
                uid: None,
                detail: format!("cache access on node {}, machine has {n}", e.node),
            });
            return;
        }
        if e.complete_at < e.cycle {
            self.record(Violation {
                kind: ViolationKind::LifecycleOrder,
                cycle: e.cycle,
                cluster: None,
                thread: None,
                uid: None,
                detail: format!(
                    "access completes at {} before it starts at {}",
                    e.complete_at, e.cycle
                ),
            });
        }
        if !e.write {
            return;
        }
        // Mirror the store buffers' drain rule: entries with
        // `complete_at <= now` leave at the next commit phase.
        let node = &mut self.nodes[e.node as usize];
        node.pending.retain(|&t| t > e.cycle);
        node.pending.push(e.complete_at);
        let (occ, cap) = (node.pending.len(), node.cap);
        if occ > cap {
            self.record(Violation {
                kind: ViolationKind::StoreBufferOverflow,
                cycle: e.cycle,
                cluster: None,
                thread: None,
                uid: None,
                detail: format!(
                    "{occ} committed stores in flight on node {}, buffers hold {cap}",
                    e.node
                ),
            });
        }
    }

    fn sync_event(&mut self, e: csmt_trace::SyncEvent) {
        self.events += 1;
        if e.thread >= self.thread_capacity {
            let cap = self.thread_capacity;
            self.record(Violation {
                kind: ViolationKind::CrossCluster,
                cycle: e.cycle,
                cluster: None,
                thread: Some(e.thread),
                uid: None,
                detail: format!("sync event for software thread {} of {cap}", e.thread),
            });
        }
    }

    fn rename_pools(&mut self, e: RenamePoolEvent) {
        self.events += 1;
        let Some(ci) = self.cluster_checked(e.cycle, e.cluster, None) else {
            return;
        };
        let c = &self.clusters[ci];
        for (file, free, held, pool) in [
            ("int", e.int_free, e.int_held, c.rename_int),
            ("fp", e.fp_free, e.fp_held, c.rename_fp),
        ] {
            if u64::from(free) + u64::from(held) != pool {
                self.record(Violation {
                    kind: ViolationKind::RenameConservation,
                    cycle: e.cycle,
                    cluster: Some(e.cluster),
                    thread: None,
                    uid: None,
                    detail: format!(
                        "{file} rename registers: {free} free + {held} held != pool of {pool}"
                    ),
                });
            }
        }
    }

    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        self.events += 1;
        self.cycles += 1;
        self.last_cycle = cycle;
        let Some(s) = stats else { return };
        let wasted: f64 = s.wasted.iter().sum();
        let total = s.useful + wasted;
        let tol = 1e-6 * (s.slots.max(1) as f64);
        if (total - s.slots as f64).abs() > tol {
            self.record(Violation {
                kind: ViolationKind::SlotConservation,
                cycle,
                cluster: None,
                thread: None,
                uid: None,
                detail: format!(
                    "useful {:.3} + wasted {:.3} != {} slots offered",
                    s.useful, wasted, s.slots
                ),
            });
        }
        if s.committed != self.commit_events {
            let seen = self.commit_events;
            self.record(Violation {
                kind: ViolationKind::StatsRegression,
                cycle,
                cluster: None,
                thread: None,
                uid: None,
                detail: format!(
                    "stats say {} committed, event stream delivered {seen}",
                    s.committed
                ),
            });
        }
        if s.running_threads > self.thread_capacity {
            let cap = self.thread_capacity;
            self.record(Violation {
                kind: ViolationKind::StatsRegression,
                cycle,
                cluster: None,
                thread: None,
                uid: None,
                detail: format!("{} running threads, capacity {cap}", s.running_threads),
            });
        }
        if let Some(p) = self.prev_stats {
            let mut bad: Vec<String> = Vec::new();
            if s.cycles != p.cycles + 1 {
                bad.push(format!("cycles {} -> {}", p.cycles, s.cycles));
            }
            if s.slots != p.slots + self.machine_slots {
                bad.push(format!(
                    "slots {} -> {} (machine offers {}/cycle)",
                    p.slots, s.slots, self.machine_slots
                ));
            }
            if s.useful + 1e-9 < p.useful {
                bad.push(format!("useful {} -> {}", p.useful, s.useful));
            }
            for (name, prev, now) in [
                ("committed", p.committed, s.committed),
                ("accesses", p.accesses, s.accesses),
                ("l1_hits", p.l1_hits, s.l1_hits),
                ("l2_hits", p.l2_hits, s.l2_hits),
                ("tlb_misses", p.tlb_misses, s.tlb_misses),
            ] {
                if now < prev {
                    bad.push(format!("{name} {prev} -> {now}"));
                }
            }
            for detail in bad {
                self.record(Violation {
                    kind: ViolationKind::StatsRegression,
                    cycle,
                    cluster: None,
                    thread: None,
                    uid: None,
                    detail: format!("cumulative counter went backwards: {detail}"),
                });
            }
        }
        self.prev_stats = Some(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmt_core::ArchKind;

    fn probe() -> InvariantProbe {
        InvariantProbe::new(&ArchKind::Smt2.chip(), 1)
    }

    fn fetch(cycle: u64, cluster: u32, thread: u32, uid: u64) -> FetchEvent {
        FetchEvent {
            cycle,
            cluster,
            thread,
            uid,
            pc: 0x1000 + uid * 4,
            op: csmt_isa::OpClass::IntAlu,
            wrong_path: false,
        }
    }

    fn stage(cycle: u64, cluster: u32, uid: u64) -> StageEvent {
        StageEvent {
            cycle,
            cluster,
            uid,
        }
    }

    /// Push one instruction through its full legal lifecycle.
    fn retire(p: &mut InvariantProbe, cycle: u64, uid: u64) {
        p.fetch(fetch(cycle, 0, 0, uid));
        p.rename(stage(cycle, 0, uid));
        p.issue(stage(cycle + 1, 0, uid));
        p.writeback(stage(cycle + 2, 0, uid));
        p.commit(stage(cycle + 3, 0, uid));
    }

    #[test]
    fn clean_lifecycle_is_clean() {
        let mut p = probe();
        retire(&mut p, 1, 1);
        retire(&mut p, 2, 2);
        assert!(p.is_clean(), "{:?}", p.violations());
        let s = p.finish().expect("clean");
        assert_eq!((s.fetched, s.committed, s.squashed), (2, 2, 0));
    }

    #[test]
    fn squash_resolves_an_instruction() {
        let mut p = probe();
        p.fetch(fetch(1, 0, 0, 1));
        p.rename(stage(1, 0, 1));
        p.squash(stage(2, 0, 1));
        assert!(p.finish().is_ok());
    }

    #[test]
    fn out_of_order_commit_is_flagged() {
        let mut p = probe();
        for uid in [1u64, 2] {
            p.fetch(fetch(1, 0, 0, uid));
            p.rename(stage(1, 0, uid));
            p.issue(stage(2, 0, uid));
            p.writeback(stage(3, 0, uid));
        }
        p.commit(stage(4, 0, 2));
        p.commit(stage(4, 0, 1));
        assert_eq!(p.violations()[0].kind, ViolationKind::OutOfOrderCommit);
    }

    #[test]
    fn never_fetched_uid_reads_as_cross_cluster() {
        let mut p = probe();
        p.issue(stage(1, 0, 99));
        assert_eq!(p.violations()[0].kind, ViolationKind::CrossCluster);
    }

    #[test]
    fn skipped_stage_is_flagged() {
        let mut p = probe();
        p.fetch(fetch(1, 0, 0, 1));
        p.rename(stage(1, 0, 1));
        p.commit(stage(2, 0, 1)); // no issue/writeback
        assert_eq!(p.violations()[0].kind, ViolationKind::LifecycleOrder);
    }

    #[test]
    fn leaked_instruction_caught_at_drain() {
        let mut p = probe();
        p.fetch(fetch(1, 0, 0, 1));
        p.rename(stage(1, 0, 1));
        let errs = p.finish().unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.kind == ViolationKind::LeakedInstruction));
    }

    #[test]
    fn rename_conservation_checked_per_file() {
        let mut p = probe();
        p.rename_pools(RenamePoolEvent {
            cycle: 5,
            cluster: 1,
            int_free: 60,
            fp_free: 64,
            int_held: 4,
            fp_held: 1, // 64 free + 1 held != 64
        });
        let v = &p.violations()[0];
        assert_eq!(v.kind, ViolationKind::RenameConservation);
        assert!(v.detail.contains("fp"), "{v}");
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn fail_fast_panics_on_first_violation() {
        let mut p = probe().fail_fast();
        p.commit(stage(1, 0, 7));
    }

    fn mig(
        cycle: u64,
        thread: u32,
        cluster: u32,
        ctx: u32,
        kind: MigrationEventKind,
    ) -> MigrationEvent {
        MigrationEvent {
            cycle,
            thread,
            cluster,
            ctx,
            kind,
            wait: 0,
        }
    }

    #[test]
    fn migration_protocol_clean_roundtrip() {
        let mut p = probe();
        p.migration(mig(0, 0, 0, 0, MigrationEventKind::Attach));
        p.migration(mig(0, 1, 1, 0, MigrationEventKind::Attach));
        p.migration(mig(100, 0, 0, 0, MigrationEventKind::Depart));
        p.migration(mig(200, 0, 1, 1, MigrationEventKind::Arrive));
        assert!(p.is_clean(), "{:?}", p.violations());
        assert!(p.finish().is_ok());
    }

    #[test]
    fn teleport_arrival_is_flagged() {
        let mut p = probe();
        p.migration(mig(0, 0, 0, 0, MigrationEventKind::Attach));
        // Thread 1 appears at a context with no prior depart.
        p.migration(mig(50, 1, 1, 2, MigrationEventKind::Arrive));
        assert_eq!(p.violations()[0].kind, ViolationKind::MigrationWithoutDrain);
        assert!(p.violations()[0].detail.contains("teleport"));
    }

    #[test]
    fn depart_with_inflight_work_is_flagged() {
        let mut p = probe();
        p.migration(mig(0, 0, 0, 0, MigrationEventKind::Attach));
        p.fetch(fetch(1, 0, 0, 1)); // context 0 now has uid 1 in flight
        p.migration(mig(2, 0, 0, 0, MigrationEventKind::Depart));
        assert!(
            p.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::MigrationWithoutDrain
                    && v.detail.contains("in flight")),
            "{:?}",
            p.violations()
        );
    }

    #[test]
    fn depart_by_non_owner_is_placement_conflict() {
        let mut p = probe();
        p.migration(mig(0, 0, 0, 0, MigrationEventKind::Attach));
        p.migration(mig(10, 3, 0, 0, MigrationEventKind::Depart));
        assert_eq!(p.violations()[0].kind, ViolationKind::PlacementConflict);
    }

    #[test]
    fn arrival_at_owned_context_is_placement_conflict() {
        let mut p = probe();
        p.migration(mig(0, 0, 0, 0, MigrationEventKind::Attach));
        p.migration(mig(0, 1, 1, 0, MigrationEventKind::Attach));
        p.migration(mig(10, 0, 0, 0, MigrationEventKind::Depart));
        p.migration(mig(120, 0, 1, 0, MigrationEventKind::Arrive)); // thread 1 lives there
        assert!(p
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::PlacementConflict));
    }

    #[test]
    fn fetch_on_unowned_context_is_flagged_once_sched_aware() {
        let mut p = probe();
        // Not sched-aware yet: fetch on any context is fine.
        p.fetch(fetch(1, 0, 1, 1));
        assert!(p.is_clean());
        p.migration(mig(2, 0, 0, 0, MigrationEventKind::Attach));
        // Now ownership is tracked: context 1 of cluster 0 has no owner.
        p.fetch(fetch(3, 0, 1, 2));
        assert!(p
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::PlacementConflict
                && v.detail.contains("no software thread owns")));
    }

    #[test]
    fn thread_still_in_transit_at_drain_is_flagged() {
        let mut p = probe();
        p.migration(mig(0, 0, 0, 0, MigrationEventKind::Attach));
        p.migration(mig(10, 0, 0, 0, MigrationEventKind::Depart));
        let errs = p.finish().unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.kind == ViolationKind::MigrationWithoutDrain
                && v.detail.contains("in transit at drain")));
    }
}
