//! Golden invariant run: every Table 2 architecture simulates `mgrid`
//! under the full [`InvariantProbe`] and must finish with zero
//! violations. This is the dynamic half of the static-analysis gate —
//! the config linter proves the budgets are right on paper, this proves
//! the pipeline honors them cycle by cycle.

use csmt_core::ArchKind;
use csmt_mem::MemConfig;
use csmt_verify::InvariantProbe;
use csmt_workloads::{by_name, simulate_probed};

/// Same seed as the figure binaries and the golden determinism digests.
const SEED: u64 = 0xC5_317;
const SCALE: f64 = 0.2;

#[test]
fn all_architectures_run_clean_under_invariant_probe() {
    let app = by_name("mgrid").expect("mgrid is a registered app");
    for kind in ArchKind::ALL {
        let chip = kind.chip();
        chip.validate()
            .unwrap_or_else(|e| panic!("{}: config invalid: {e:?}", kind.name()));
        let mut probe = InvariantProbe::new(&chip, 1);
        let result = simulate_probed(&app, chip, 1, SCALE, SEED, MemConfig::table3(), &mut probe);
        match probe.finish() {
            Ok(summary) => {
                assert!(summary.committed > 0, "{}: nothing committed", kind.name());
                assert_eq!(
                    summary.cycles,
                    result.cycles,
                    "{}: probe cycle count diverged from the run result",
                    kind.name()
                );
            }
            Err(violations) => {
                let shown: Vec<String> = violations
                    .iter()
                    .take(10)
                    .map(ToString::to_string)
                    .collect();
                panic!(
                    "{}: {} invariant violation(s):\n{}",
                    kind.name(),
                    violations.len(),
                    shown.join("\n")
                );
            }
        }
    }
}
