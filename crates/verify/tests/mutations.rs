//! Mutation tests: seed one fault at a time into the event stream between
//! the simulator and the [`InvariantProbe`], and assert the checker
//! reports the violation kind that fault was designed to trip. A checker
//! that passes the golden run but misses these mutations is vacuous —
//! this is the test of the tests.
//!
//! The [`FaultInjector`] is a probe wrapper: it forwards every event to an
//! inner `InvariantProbe`, except that the armed fault fires once at its
//! trigger point (duplicating, dropping, reordering, or corrupting an
//! event). Faults may knock on secondary violations (a dropped commit also
//! leaks the instruction at drain, a held commit desynchronizes the
//! per-cycle committed counter); each test therefore asserts the *target*
//! kind is present, not that it is alone.

use csmt_core::{ArchKind, ChipConfig};
use csmt_mem::MemConfig;
use csmt_trace::{
    CacheEvent, CycleStats, FetchEvent, MigrationEvent, MigrationEventKind, Probe, RenamePoolEvent,
    StageEvent,
};
use csmt_verify::{InvariantProbe, VerifySummary, Violation, ViolationKind};
use csmt_workloads::{by_name, simulate_probed};
use std::collections::HashMap;

/// Seed shared with the figure binaries and golden tests.
const SEED: u64 = 0xC5_317;
const SCALE: f64 = 0.05;

/// Which single fault to seed into the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Forward everything untouched (control run — must be clean).
    None,
    /// Inject a burst of phantom fetches past the window budget.
    PhantomFetchBurst,
    /// Report one fewer free integer rename register than reality.
    RenamePoolSkew,
    /// Hold a commit and release it after a later same-thread commit.
    CommitSwap,
    /// Replay an issue event relabeled to a cluster the machine lacks.
    ClusterRelabel,
    /// Add a slot to one hazard bucket of a `CycleStats` snapshot.
    SlotSkim,
    /// Deliver the same commit event twice.
    DoubleCommit,
    /// Replay an issue event until the cluster's width is exceeded.
    IssueBurst,
    /// Swallow a commit event entirely.
    CommitDrop,
    /// Inject phantom committed stores past the node's buffer capacity.
    StoreFlood,
    /// Rewind the cumulative committed counter by one.
    StatsRewind,
    /// Synthesize a `Depart` for a thread whose context still has an
    /// instruction in flight — a migration that skipped the drain.
    ThreadTeleport,
}

/// Probe wrapper that forwards to an [`InvariantProbe`], firing `fault`
/// exactly once at its trigger point.
struct FaultInjector {
    inner: InvariantProbe,
    fault: Fault,
    /// True until the fault has fired.
    armed: bool,
    /// Per-cluster window budget (phantom-fetch burst size).
    window_cap: usize,
    /// Per-cluster issue width (issue-burst size).
    issue_width: usize,
    /// Per-node store-buffer capacity (store-flood size).
    store_cap: usize,
    /// Total clusters in the machine (for the out-of-range relabel).
    n_clusters: u32,
    /// Cluster-0 uid → hardware thread, from fetch events (for the swap).
    threads: HashMap<u64, u32>,
    /// (cluster, context) → software thread id, from `Attach` migration
    /// events (for the teleport fault's owner lookup).
    slot_tid: HashMap<(u32, u32), u32>,
    held_commit: Option<StageEvent>,
}

impl FaultInjector {
    fn new(chip: &ChipConfig, n_chips: usize, fault: Fault) -> Self {
        FaultInjector {
            inner: InvariantProbe::new(chip, n_chips),
            fault,
            armed: fault != Fault::None,
            window_cap: chip.cluster.window_entries,
            issue_width: chip.cluster.issue_width,
            store_cap: chip.clusters * chip.cluster.store_buffer,
            n_clusters: (chip.clusters * n_chips) as u32,
            threads: HashMap::new(),
            slot_tid: HashMap::new(),
            held_commit: None,
        }
    }

    /// Flush any held event, assert the fault actually fired, and run the
    /// inner checker's drain.
    fn finish(mut self) -> Result<VerifySummary, Vec<Violation>> {
        if let Some(h) = self.held_commit.take() {
            self.inner.commit(h);
        }
        assert!(
            !self.armed,
            "fault {:?} never reached its trigger point",
            self.fault
        );
        self.inner.finish()
    }
}

impl Probe for FaultInjector {
    const WANTS_INST_EVENTS: bool = true;
    const WANTS_CACHE_EVENTS: bool = true;
    const WANTS_CYCLE_STATS: bool = true;
    const WANTS_POOL_STATS: bool = true;
    const WANTS_SCHED_EVENTS: bool = true;

    fn fetch(&mut self, e: FetchEvent) {
        if e.cluster == 0 {
            self.threads.insert(e.uid, e.thread);
        }
        self.inner.fetch(e);
        if self.armed && self.fault == Fault::PhantomFetchBurst && e.cluster == 0 {
            self.armed = false;
            for i in 0..=self.window_cap as u64 {
                self.inner.fetch(FetchEvent {
                    uid: 1_000_000 + i,
                    ..e
                });
            }
        }
        if self.armed && self.fault == Fault::ThreadTeleport && e.cluster == 0 {
            // The fetch just forwarded is in flight on this context, so a
            // depart right now is a migration that skipped the drain.
            if let Some(&tid) = self.slot_tid.get(&(e.cluster, e.thread)) {
                self.armed = false;
                self.inner.migration(MigrationEvent {
                    cycle: e.cycle,
                    thread: tid,
                    cluster: e.cluster,
                    ctx: e.thread,
                    kind: MigrationEventKind::Depart,
                    wait: 0,
                });
            }
        }
    }

    fn rename(&mut self, e: StageEvent) {
        self.inner.rename(e);
    }

    fn issue(&mut self, e: StageEvent) {
        self.inner.issue(e);
        if self.armed {
            match self.fault {
                Fault::ClusterRelabel => {
                    self.armed = false;
                    self.inner.issue(StageEvent {
                        cluster: self.n_clusters,
                        ..e
                    });
                }
                Fault::IssueBurst if e.cluster == 0 => {
                    self.armed = false;
                    for _ in 0..self.issue_width {
                        self.inner.issue(e);
                    }
                }
                _ => {}
            }
        }
    }

    fn writeback(&mut self, e: StageEvent) {
        self.inner.writeback(e);
    }

    fn commit(&mut self, e: StageEvent) {
        if self.armed && e.cluster == 0 {
            match self.fault {
                Fault::CommitDrop => {
                    self.armed = false;
                    return;
                }
                Fault::DoubleCommit => {
                    self.armed = false;
                    self.inner.commit(e);
                    self.inner.commit(e);
                    return;
                }
                Fault::CommitSwap => {
                    let Some(held) = self.held_commit else {
                        self.held_commit = Some(e);
                        return;
                    };
                    if self.threads.get(&e.uid) == self.threads.get(&held.uid) {
                        // Later same-thread commit found: release it first,
                        // then the held (earlier) one — out of order.
                        self.armed = false;
                        self.held_commit = None;
                        self.inner.commit(e);
                        self.inner.commit(held);
                    } else {
                        self.inner.commit(e);
                    }
                    return;
                }
                _ => {}
            }
        }
        self.inner.commit(e);
    }

    fn squash(&mut self, e: StageEvent) {
        self.inner.squash(e);
    }

    fn cache_access(&mut self, e: CacheEvent) {
        self.inner.cache_access(e);
        if self.armed && self.fault == Fault::StoreFlood && e.write {
            self.armed = false;
            for _ in 0..self.store_cap {
                self.inner.cache_access(CacheEvent {
                    complete_at: e.cycle + 100_000,
                    ..e
                });
            }
        }
    }

    fn sync_event(&mut self, e: csmt_trace::SyncEvent) {
        self.inner.sync_event(e);
    }

    fn migration(&mut self, e: MigrationEvent) {
        if e.kind == MigrationEventKind::Attach {
            self.slot_tid.insert((e.cluster, e.ctx), e.thread);
        }
        self.inner.migration(e);
    }

    fn rename_pools(&mut self, e: RenamePoolEvent) {
        if self.armed && self.fault == Fault::RenamePoolSkew {
            self.armed = false;
            self.inner.rename_pools(RenamePoolEvent {
                int_free: e.int_free + 1,
                ..e
            });
            return;
        }
        self.inner.rename_pools(e);
    }

    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        if self.armed {
            if let Some(s) = stats {
                match self.fault {
                    Fault::SlotSkim if s.slots > 0 => {
                        self.armed = false;
                        let mut skimmed = *s;
                        skimmed.wasted[0] += 1.0;
                        self.inner.cycle_end(cycle, Some(&skimmed));
                        return;
                    }
                    Fault::StatsRewind if s.committed > 0 => {
                        self.armed = false;
                        let mut rewound = *s;
                        rewound.committed -= 1;
                        self.inner.cycle_end(cycle, Some(&rewound));
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.inner.cycle_end(cycle, stats);
    }
}

/// Run mgrid on SMT2 (2-wide clusters, 2 contexts each — small enough to
/// be fast, multithreaded enough to exercise every event type) with the
/// given fault seeded.
fn run_with(fault: Fault) -> Result<VerifySummary, Vec<Violation>> {
    let chip = ArchKind::Smt2.chip();
    let app = by_name("mgrid").expect("mgrid is a registered app");
    let mut fi = FaultInjector::new(&chip, 1, fault);
    simulate_probed(&app, chip, 1, SCALE, SEED, MemConfig::table3(), &mut fi);
    fi.finish()
}

/// Assert the fault is caught and the target kind is among the reports.
fn caught(fault: Fault, kind: ViolationKind) {
    let errs = run_with(fault).expect_err("seeded fault must not verify clean");
    assert!(
        errs.iter().any(|v| v.kind == kind),
        "fault {:?}: wanted {:?} among {} violation(s), first few: {:#?}",
        fault,
        kind,
        errs.len(),
        &errs[..errs.len().min(4)]
    );
}

#[test]
fn control_run_is_clean() {
    let summary = run_with(Fault::None).expect("unmutated run must verify clean");
    assert!(summary.committed > 0);
    assert!(summary.cycles > 0);
}

#[test]
fn phantom_fetch_burst_trips_window_overflow() {
    caught(Fault::PhantomFetchBurst, ViolationKind::WindowOverflow);
}

#[test]
fn rename_pool_skew_trips_rename_conservation() {
    caught(Fault::RenamePoolSkew, ViolationKind::RenameConservation);
}

#[test]
fn commit_swap_trips_out_of_order_commit() {
    caught(Fault::CommitSwap, ViolationKind::OutOfOrderCommit);
}

#[test]
fn cluster_relabel_trips_cross_cluster() {
    caught(Fault::ClusterRelabel, ViolationKind::CrossCluster);
}

#[test]
fn slot_skim_trips_slot_conservation() {
    caught(Fault::SlotSkim, ViolationKind::SlotConservation);
}

#[test]
fn double_commit_trips_lifecycle_order() {
    caught(Fault::DoubleCommit, ViolationKind::LifecycleOrder);
}

#[test]
fn issue_burst_trips_issue_width() {
    caught(Fault::IssueBurst, ViolationKind::IssueWidthExceeded);
}

#[test]
fn commit_drop_trips_leak_at_drain() {
    caught(Fault::CommitDrop, ViolationKind::LeakedInstruction);
}

#[test]
fn store_flood_trips_store_buffer_overflow() {
    caught(Fault::StoreFlood, ViolationKind::StoreBufferOverflow);
}

#[test]
fn stats_rewind_trips_stats_regression() {
    caught(Fault::StatsRewind, ViolationKind::StatsRegression);
}

#[test]
fn thread_teleport_trips_migration_without_drain() {
    caught(Fault::ThreadTeleport, ViolationKind::MigrationWithoutDrain);
}
